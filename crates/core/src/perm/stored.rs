//! The "store permutations in memory" mode (`fixed.seed.sampling = "n"`):
//! all label arrangements are materialized into a B×n matrix before the
//! kernel runs.

use super::ResamplingStream;
use crate::error::{Error, Result};

/// A fully materialized arrangement sequence. Construction consumes another
/// stream from its current position to exhaustion; `skip` is O(1)
/// afterwards.
#[derive(Debug, Clone)]
pub struct StoredMatrix {
    data: Vec<u8>,
    cols: usize,
    cursor: u64,
    len: u64,
}

impl StoredMatrix {
    /// Materialize `source` (typically a sequential on-the-fly stream) for
    /// `cols` label columns.
    pub fn materialize(source: &mut dyn ResamplingStream, cols: usize) -> Self {
        let len = source.len() - source.position();
        let mut data = vec![0u8; len as usize * cols];
        let mut written = 0u64;
        {
            let mut chunks = data.chunks_exact_mut(cols);
            for chunk in &mut chunks {
                if !source.next_into(chunk) {
                    break;
                }
                written += 1;
            }
        }
        debug_assert_eq!(written, len, "source ended before its declared length");
        StoredMatrix {
            data,
            cols,
            cursor: 0,
            len,
        }
    }

    /// Build a stored sequence from externally supplied rows (e.g. an
    /// arrangement matrix replayed from a file), validating that every row
    /// covers exactly `expected_cols` sample columns. Mismatched rows report
    /// [`Error::ArrangementWidth`] instead of corrupting or panicking later.
    pub fn try_from_rows(rows: &[Vec<u8>], expected_cols: usize) -> Result<Self> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != expected_cols {
                return Err(Error::ArrangementWidth {
                    row: i,
                    expected: expected_cols,
                    got: row.len(),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * expected_cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(StoredMatrix {
            data,
            cols: expected_cols,
            cursor: 0,
            len: rows.len() as u64,
        })
    }

    /// Verify the stored width against a dataset's sample count, reporting
    /// [`Error::ArrangementWidth`] on mismatch. Callers applying a stored
    /// matrix to a dataset they did not materialize it from must check this
    /// before iterating — `next_into` is infallible by contract.
    pub fn check_width(&self, expected: usize) -> Result<()> {
        if self.cols != expected {
            return Err(Error::ArrangementWidth {
                row: 0,
                expected,
                got: self.cols,
            });
        }
        Ok(())
    }

    /// Bytes held by the stored matrix (the memory the paper's on-the-fly
    /// mode avoids).
    pub fn memory_bytes(&self) -> usize {
        self.data.len()
    }
}

impl ResamplingStream for StoredMatrix {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        let start = self.cursor as usize * self.cols;
        out.copy_from_slice(&self.data[start..start + self.cols]);
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::shuffle::ShuffleSequential;
    use crate::perm::test_support::collect_all;

    #[test]
    fn materialized_sequence_matches_source() {
        let base = vec![0u8, 0, 1, 1, 1];
        let direct = collect_all(&mut ShuffleSequential::new(base.clone(), 12, 3), 5);
        let mut src = ShuffleSequential::new(base, 12, 3);
        let mut stored = StoredMatrix::materialize(&mut src, 5);
        assert_eq!(collect_all(&mut stored, 5), direct);
    }

    #[test]
    fn skip_is_index_jump() {
        let base = vec![0u8, 1, 0, 1];
        let mut src = ShuffleSequential::new(base.clone(), 9, 1);
        let mut stored = StoredMatrix::materialize(&mut src, 4);
        let all = collect_all(&mut stored.clone(), 4);
        stored.skip(6);
        assert_eq!(stored.position(), 6);
        assert_eq!(collect_all(&mut stored, 4), all[6..]);
    }

    #[test]
    fn memory_accounting() {
        let base = vec![0u8; 10];
        let mut src = ShuffleSequential::new(base, 100, 0);
        let stored = StoredMatrix::materialize(&mut src, 10);
        assert_eq!(stored.memory_bytes(), 1000);
    }

    #[test]
    fn try_from_rows_accepts_uniform_widths() {
        let rows = vec![vec![0u8, 0, 1, 1], vec![1u8, 0, 1, 0], vec![1u8, 1, 0, 0]];
        let mut stored = StoredMatrix::try_from_rows(&rows, 4).unwrap();
        assert!(stored.check_width(4).is_ok());
        assert_eq!(collect_all(&mut stored, 4), rows);
    }

    #[test]
    fn try_from_rows_reports_offending_row_and_widths() {
        let rows = vec![vec![0u8, 0, 1, 1], vec![1u8, 0, 1]];
        match StoredMatrix::try_from_rows(&rows, 4) {
            Err(Error::ArrangementWidth { row, expected, got }) => {
                assert_eq!((row, expected, got), (1, 4, 3));
            }
            other => panic!("expected ArrangementWidth, got {other:?}"),
        }
    }

    #[test]
    fn check_width_rejects_dataset_mismatch() {
        let rows = vec![vec![0u8, 1, 0]];
        let stored = StoredMatrix::try_from_rows(&rows, 3).unwrap();
        match stored.check_width(8) {
            Err(Error::ArrangementWidth { row, expected, got }) => {
                assert_eq!((row, expected, got), (0, 8, 3));
            }
            other => panic!("expected ArrangementWidth, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_returns_false() {
        let base = vec![0u8, 1];
        let mut src = ShuffleSequential::new(base, 3, 0);
        let mut stored = StoredMatrix::materialize(&mut src, 2);
        let mut out = [0u8; 2];
        for _ in 0..3 {
            assert!(stored.next_into(&mut out));
        }
        assert!(!stored.next_into(&mut out));
    }
}
