//! The "store permutations in memory" mode (`fixed.seed.sampling = "n"`):
//! all label arrangements are materialized into a B×n matrix before the
//! kernel runs.

use super::PermutationGenerator;

/// A fully materialized permutation sequence. Construction consumes another
/// generator from its current position to exhaustion; `skip` is O(1)
/// afterwards.
#[derive(Debug, Clone)]
pub struct StoredMatrix {
    data: Vec<u8>,
    cols: usize,
    cursor: u64,
    len: u64,
}

impl StoredMatrix {
    /// Materialize `source` (typically a sequential on-the-fly generator) for
    /// `cols` label columns.
    pub fn materialize(source: &mut dyn PermutationGenerator, cols: usize) -> Self {
        let len = source.len() - source.position();
        let mut data = vec![0u8; len as usize * cols];
        let mut written = 0u64;
        {
            let mut chunks = data.chunks_exact_mut(cols);
            for chunk in &mut chunks {
                if !source.next_into(chunk) {
                    break;
                }
                written += 1;
            }
        }
        debug_assert_eq!(written, len, "source ended before its declared length");
        StoredMatrix {
            data,
            cols,
            cursor: 0,
            len,
        }
    }

    /// Bytes held by the stored matrix (the memory the paper's on-the-fly
    /// mode avoids).
    pub fn memory_bytes(&self) -> usize {
        self.data.len()
    }
}

impl PermutationGenerator for StoredMatrix {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        let start = self.cursor as usize * self.cols;
        out.copy_from_slice(&self.data[start..start + self.cols]);
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::shuffle::ShuffleSequential;
    use crate::perm::test_support::collect_all;

    #[test]
    fn materialized_sequence_matches_source() {
        let base = vec![0u8, 0, 1, 1, 1];
        let direct = collect_all(&mut ShuffleSequential::new(base.clone(), 12, 3), 5);
        let mut src = ShuffleSequential::new(base, 12, 3);
        let mut stored = StoredMatrix::materialize(&mut src, 5);
        assert_eq!(collect_all(&mut stored, 5), direct);
    }

    #[test]
    fn skip_is_index_jump() {
        let base = vec![0u8, 1, 0, 1];
        let mut src = ShuffleSequential::new(base.clone(), 9, 1);
        let mut stored = StoredMatrix::materialize(&mut src, 4);
        let all = collect_all(&mut stored.clone(), 4);
        stored.skip(6);
        assert_eq!(stored.position(), 6);
        assert_eq!(collect_all(&mut stored, 4), all[6..]);
    }

    #[test]
    fn memory_accounting() {
        let base = vec![0u8; 10];
        let mut src = ShuffleSequential::new(base, 100, 0);
        let stored = StoredMatrix::materialize(&mut src, 10);
        assert_eq!(stored.memory_bytes(), 1000);
    }

    #[test]
    fn exhaustion_returns_false() {
        let base = vec![0u8, 1];
        let mut src = ShuffleSequential::new(base, 3, 0);
        let mut stored = StoredMatrix::materialize(&mut src, 2);
        let mut out = [0u8; 2];
        for _ in 0..3 {
            assert!(stored.next_into(&mut out));
        }
        assert!(!stored.next_into(&mut out));
    }
}
