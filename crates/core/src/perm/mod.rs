//! Permutation generators: the random (Monte-Carlo) and complete generators
//! of `mt.maxT`, each with skip-ahead for parallel distribution.
//!
//! The paper (§3.1) describes 24 option combinations
//! (generator × method × store) collapsing to **eight distinct
//! implementations**; this module contains exactly those eight:
//!
//! | family (methods)                | random, fixed seed | random, stored | complete |
//! |---------------------------------|--------------------|----------------|----------|
//! | shuffle (t, t.equalvar, wilcoxon, f) | [`shuffle::ShuffleFixedSeed`] | [`shuffle::ShuffleSequential`] → [`stored::StoredMatrix`] | [`shuffle::CompleteShuffle`] |
//! | paired (pairt)                  | [`paired::PairFlipFixedSeed`] | [`paired::PairFlipSequential`] → [`stored::StoredMatrix`] | [`paired::CompletePaired`] |
//! | block (blockf)                  | [`block::BlockShuffleFixedSeed`] | [`block::BlockShuffleSequential`] (never stored) | [`block::CompleteBlock`] |
//!
//! Complete generators are never stored either (paper: the option exists but
//! is served on-the-fly), and every sequence emits the **observed labelling
//! at index 0** — the "first permutation" that only the master process counts
//! (paper Figure 2).

pub mod arrangement;
pub mod block;
pub mod bootstrap;
pub mod count;
pub mod iter;
pub mod multiset;
pub mod paired;
pub mod shuffle;
pub mod stored;

use crate::error::{Error, Result};
use crate::labels::{ClassLabels, Design};
use crate::options::{PmaxtOptions, SamplingMode};

pub use arrangement::{build_stream, Arrangement, StreamPlan};

/// A deterministic, skip-ahead-capable stream of resampling draws.
///
/// This is the seam the engine, checkpoint digests and cross-daemon span
/// splitting depend on: the `j`-th draw is a pure function of the stream's
/// construction inputs, never of how the positions before `j` were consumed.
/// The sequence has a definite length (the observed arrangement at index 0,
/// then `len()−1` draws); `skip` forwards the stream, cheaply where the
/// representation allows (O(1) for fixed-seed and complete streams). This is
/// the "additional variable to the initialization function" interface of
/// paper §3.2.
///
/// What a draw *means* — a label permutation, a pair-sign flip, a block
/// shuffle, or a with-replacement bootstrap index draw — is the
/// [`Arrangement`] semantics layer on top (see [`arrangement`]); the stream
/// itself only promises deterministic bytes with skip-ahead.
pub trait ResamplingStream: Send {
    /// Total sequence length, including the observed arrangement at index 0.
    fn len(&self) -> u64;

    /// Current position (number of draws already produced/skipped).
    fn position(&self) -> u64;

    /// Write the next draw into `out`; `false` once exhausted.
    fn next_into(&mut self, out: &mut [u8]) -> bool;

    /// Advance the position by `n` without producing output.
    fn skip(&mut self, n: u64);

    /// True when the sequence is empty (never the case for validated runs).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Historical name of [`ResamplingStream`], kept so existing consumers and
/// trait impls compile unchanged. The permutation families implement the
/// same trait; only the name moved when the bootstrap workload landed.
pub use ResamplingStream as PermutationGenerator;

/// Resolve the effective permutation count for a run: `B` itself for random
/// sampling, or the complete-arrangement count when `B = 0` (checked against
/// `max_complete`).
pub fn resolve_permutation_count(labels: &ClassLabels, opts: &PmaxtOptions) -> Result<u64> {
    if opts.b > 0 {
        return Ok(opts.b);
    }
    let total = match labels.design() {
        Design::TwoSample { n0, n1 } => count::multiset_count(&[*n0, *n1]),
        Design::MultiClass { counts } => count::multiset_count(counts),
        Design::Paired { pairs } => count::paired_count(*pairs),
        Design::Block { blocks, treatments } => count::block_count(*blocks, *treatments),
    };
    match total {
        Some(t) if t <= opts.max_complete as u128 => Ok(t as u64),
        other => Err(Error::TooManyPermutations {
            total: other,
            max: opts.max_complete,
        }),
    }
}

/// Build the permutation generator for a validated run. `b_resolved` must
/// come from [`resolve_permutation_count`].
pub fn build_generator(
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b_resolved: u64,
) -> Result<Box<dyn PermutationGenerator>> {
    let base = labels.as_slice().to_vec();
    let complete = opts.b == 0;
    let gen: Box<dyn PermutationGenerator> = match labels.design() {
        Design::TwoSample { .. } | Design::MultiClass { .. } => {
            if complete {
                Box::new(shuffle::CompleteShuffle::new(base, b_resolved))
            } else {
                match opts.sampling {
                    SamplingMode::FixedSeedOnTheFly => {
                        Box::new(shuffle::ShuffleFixedSeed::new(base, b_resolved, opts.seed))
                    }
                    SamplingMode::Stored => {
                        let mut seq = shuffle::ShuffleSequential::new(base, b_resolved, opts.seed);
                        Box::new(stored::StoredMatrix::materialize(&mut seq, labels.len()))
                    }
                }
            }
        }
        Design::Paired { .. } => {
            if complete {
                Box::new(paired::CompletePaired::new(base, b_resolved))
            } else {
                match opts.sampling {
                    SamplingMode::FixedSeedOnTheFly => {
                        Box::new(paired::PairFlipFixedSeed::new(base, b_resolved, opts.seed))
                    }
                    SamplingMode::Stored => {
                        let mut seq = paired::PairFlipSequential::new(base, b_resolved, opts.seed);
                        Box::new(stored::StoredMatrix::materialize(&mut seq, labels.len()))
                    }
                }
            }
        }
        Design::Block { treatments, .. } => {
            let k = *treatments;
            if complete {
                Box::new(block::CompleteBlock::new(base, k, b_resolved))
            } else {
                match opts.sampling {
                    SamplingMode::FixedSeedOnTheFly => Box::new(block::BlockShuffleFixedSeed::new(
                        base, k, b_resolved, opts.seed,
                    )),
                    // blockf is never stored: serve the request on-the-fly
                    // from the sequential stream (paper §3.1).
                    SamplingMode::Stored => Box::new(block::BlockShuffleSequential::new(
                        base, k, b_resolved, opts.seed,
                    )),
                }
            }
        }
    };
    Ok(gen)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::PermutationGenerator;

    /// Drain a generator into a vector of label arrangements.
    pub fn collect_all(gen: &mut dyn PermutationGenerator, cols: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; cols];
        while gen.next_into(&mut buf) {
            out.push(buf.clone());
        }
        out
    }

    /// Take up to `count` arrangements.
    pub fn collect_range(
        gen: &mut dyn PermutationGenerator,
        cols: usize,
        count: usize,
    ) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; cols];
        for _ in 0..count {
            if !gen.next_into(&mut buf) {
                break;
            }
            out.push(buf.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TestMethod;
    use test_support::collect_all;

    fn opts() -> PmaxtOptions {
        PmaxtOptions::default()
    }

    #[test]
    fn resolve_random_passes_b_through() {
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let o = opts().permutations(777);
        assert_eq!(resolve_permutation_count(&labels, &o).unwrap(), 777);
    }

    #[test]
    fn resolve_complete_two_sample() {
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let o = opts().permutations(0);
        assert_eq!(resolve_permutation_count(&labels, &o).unwrap(), 6); // C(4,2)
    }

    #[test]
    fn resolve_complete_paired_and_block() {
        let pl = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::PairT).unwrap();
        let o = opts().permutations(0);
        assert_eq!(resolve_permutation_count(&pl, &o).unwrap(), 8); // 2^3
        let bl = ClassLabels::new(vec![0, 1, 2, 0, 1, 2], TestMethod::BlockF).unwrap();
        assert_eq!(resolve_permutation_count(&bl, &o).unwrap(), 36); // (3!)^2
    }

    #[test]
    fn resolve_complete_respects_cap() {
        // 38+38 columns: C(76,38) ≈ 7e21 >> any u64 cap.
        let mut v = vec![0u8; 38];
        v.extend(vec![1u8; 38]);
        let labels = ClassLabels::new(v, TestMethod::T).unwrap();
        let o = opts().permutations(0).max_complete(1_000_000);
        match resolve_permutation_count(&labels, &o) {
            Err(Error::TooManyPermutations { total, max }) => {
                assert!(total.is_some());
                assert_eq!(max, 1_000_000);
            }
            other => panic!("expected TooManyPermutations, got {other:?}"),
        }
    }

    #[test]
    fn every_family_and_mode_builds_and_starts_with_identity() {
        let cases: Vec<(ClassLabels, PmaxtOptions)> = vec![
            // shuffle random fixed-seed / stored / complete
            (
                ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap(),
                opts().permutations(12),
            ),
            (
                ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap(),
                opts().permutations(12).fixed_seed_sampling("n").unwrap(),
            ),
            (
                ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap(),
                opts().permutations(0),
            ),
            // paired
            (
                ClassLabels::new(vec![0, 1, 1, 0], TestMethod::PairT).unwrap(),
                opts().test(TestMethod::PairT).permutations(7),
            ),
            (
                ClassLabels::new(vec![0, 1, 1, 0], TestMethod::PairT).unwrap(),
                opts()
                    .test(TestMethod::PairT)
                    .permutations(7)
                    .fixed_seed_sampling("n")
                    .unwrap(),
            ),
            (
                ClassLabels::new(vec![0, 1, 1, 0], TestMethod::PairT).unwrap(),
                opts().test(TestMethod::PairT).permutations(0),
            ),
            // block
            (
                ClassLabels::new(vec![0, 1, 1, 0], TestMethod::BlockF).unwrap(),
                opts().test(TestMethod::BlockF).permutations(9),
            ),
            (
                ClassLabels::new(vec![0, 1, 1, 0], TestMethod::BlockF).unwrap(),
                opts().test(TestMethod::BlockF).permutations(0),
            ),
        ];
        for (labels, o) in cases {
            let b = resolve_permutation_count(&labels, &o).unwrap();
            let mut g = build_generator(&labels, &o, b).unwrap();
            assert_eq!(g.len(), b);
            assert!(!g.is_empty());
            let mut out = vec![0u8; labels.len()];
            assert!(g.next_into(&mut out));
            assert_eq!(out, labels.as_slice(), "identity first for {o:?}");
        }
    }

    #[test]
    fn stored_and_sequential_agree() {
        // The stored matrix must hold exactly the sequential stream.
        let labels = ClassLabels::new(vec![0, 0, 1, 1, 1], TestMethod::T).unwrap();
        let o_stored = opts().permutations(10).fixed_seed_sampling("n").unwrap();
        let mut g_stored = build_generator(&labels, &o_stored, 10).unwrap();
        let mut g_seq =
            shuffle::ShuffleSequential::new(labels.as_slice().to_vec(), 10, o_stored.seed);
        assert_eq!(collect_all(&mut *g_stored, 5), collect_all(&mut g_seq, 5));
    }

    #[test]
    fn blockf_stored_request_is_served_on_the_fly() {
        // No StoredMatrix for blockf: equality with the sequential stream and
        // O(len) skip behaviour is all we can observe from outside; check
        // stream equality.
        let labels = ClassLabels::new(vec![0, 1, 1, 0, 0, 1], TestMethod::BlockF).unwrap();
        let o = opts()
            .test(TestMethod::BlockF)
            .permutations(8)
            .fixed_seed_sampling("n")
            .unwrap();
        let mut g = build_generator(&labels, &o, 8).unwrap();
        let mut seq = block::BlockShuffleSequential::new(labels.as_slice().to_vec(), 2, 8, o.seed);
        assert_eq!(collect_all(&mut *g, 6), collect_all(&mut seq, 6));
    }
}
