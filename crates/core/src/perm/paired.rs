//! Generators for the paired design (`pairt`): a permutation is a pattern of
//! within-pair label swaps (sign flips of the pair differences).

use super::PermutationGenerator;
use crate::rng::{mix_seed, Xoshiro256};

#[inline]
fn flip_pair(labels: &mut [u8], j: usize) {
    labels.swap(2 * j, 2 * j + 1);
}

/// Monte-Carlo sign flips with fixed-seed sampling: permutation `b` flips
/// each pair independently with probability ½ under an RNG seeded from
/// `mix(seed, b)`. Index 0 is the observed labelling; `skip` is O(1).
#[derive(Debug, Clone)]
pub struct PairFlipFixedSeed {
    base: Vec<u8>,
    pairs: usize,
    seed: u64,
    cursor: u64,
    len: u64,
}

impl PairFlipFixedSeed {
    /// `base` is the observed labelling (pairs at `(2j, 2j+1)`).
    pub fn new(base: Vec<u8>, len: u64, seed: u64) -> Self {
        let pairs = base.len() / 2;
        PairFlipFixedSeed {
            base,
            pairs,
            seed,
            cursor: 0,
            len,
        }
    }
}

impl PermutationGenerator for PairFlipFixedSeed {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        out.copy_from_slice(&self.base);
        if self.cursor > 0 {
            let mut rng = Xoshiro256::seed_from(mix_seed(self.seed, self.cursor));
            for j in 0..self.pairs {
                if rng.next_bool() {
                    flip_pair(out, j);
                }
            }
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

/// Monte-Carlo sign flips from one sequential stream (`fixed.seed.sampling =
/// "n"`). Each non-identity permutation consumes exactly `pairs` draws, so
/// `skip` replays the draws to stay on-stream.
#[derive(Debug, Clone)]
pub struct PairFlipSequential {
    base: Vec<u8>,
    pairs: usize,
    rng: Xoshiro256,
    cursor: u64,
    len: u64,
}

impl PairFlipSequential {
    /// `base` is the observed labelling.
    pub fn new(base: Vec<u8>, len: u64, seed: u64) -> Self {
        let pairs = base.len() / 2;
        PairFlipSequential {
            base,
            pairs,
            rng: Xoshiro256::seed_from(seed),
            cursor: 0,
            len,
        }
    }

    fn draw_pattern(&mut self, out: Option<&mut [u8]>) {
        // Consume exactly `pairs` draws whether or not output is wanted.
        match out {
            Some(out) => {
                for j in 0..self.pairs {
                    if self.rng.next_bool() {
                        flip_pair(out, j);
                    }
                }
            }
            None => {
                for _ in 0..self.pairs {
                    self.rng.next_bool();
                }
            }
        }
    }
}

impl PermutationGenerator for PairFlipSequential {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        out.copy_from_slice(&self.base);
        if self.cursor > 0 {
            self.draw_pattern(Some(out));
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        let target = self.cursor.saturating_add(n).min(self.len);
        while self.cursor < target {
            if self.cursor > 0 {
                self.draw_pattern(None);
            }
            self.cursor += 1;
        }
    }
}

/// Complete enumeration of all `2^pairs` flip patterns. Pattern `b` flips
/// pair `j` iff bit `j` of `b` is set; pattern 0 is the observed labelling,
/// so the identity-first convention holds with no reordering. `skip` is O(1).
#[derive(Debug, Clone)]
pub struct CompletePaired {
    base: Vec<u8>,
    pairs: usize,
    cursor: u64,
    len: u64,
}

impl CompletePaired {
    /// `base` is the observed labelling; `len` must equal `2^pairs` (already
    /// validated against the cap).
    pub fn new(base: Vec<u8>, len: u64) -> Self {
        let pairs = base.len() / 2;
        CompletePaired {
            base,
            pairs,
            cursor: 0,
            len,
        }
    }
}

impl PermutationGenerator for CompletePaired {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        out.copy_from_slice(&self.base);
        for j in 0..self.pairs {
            if self.cursor >> j & 1 == 1 {
                flip_pair(out, j);
            }
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::test_support::{collect_all, collect_range};

    const BASE: [u8; 6] = [0, 1, 1, 0, 0, 1];

    #[test]
    fn fixed_seed_identity_first_and_pairs_valid() {
        let mut g = PairFlipFixedSeed::new(BASE.to_vec(), 30, 5);
        let all = collect_all(&mut g, 6);
        assert_eq!(all[0], BASE.to_vec());
        for labels in &all {
            for j in 0..3 {
                let (a, b) = (labels[2 * j], labels[2 * j + 1]);
                assert!(a != b && a <= 1 && b <= 1, "pair {j} of {labels:?}");
            }
        }
    }

    #[test]
    fn fixed_seed_skip_equals_iterate() {
        let all = collect_all(&mut PairFlipFixedSeed::new(BASE.to_vec(), 20, 5), 6);
        for start in [0u64, 1, 7, 19] {
            let mut g = PairFlipFixedSeed::new(BASE.to_vec(), 20, 5);
            g.skip(start);
            assert_eq!(collect_all(&mut g, 6), all[start as usize..]);
        }
    }

    #[test]
    fn sequential_skip_equals_iterate() {
        let all = collect_all(&mut PairFlipSequential::new(BASE.to_vec(), 20, 5), 6);
        assert_eq!(all[0], BASE.to_vec());
        for start in [0u64, 1, 2, 10, 19] {
            let mut g = PairFlipSequential::new(BASE.to_vec(), 20, 5);
            g.skip(start);
            assert_eq!(
                collect_all(&mut g, 6),
                all[start as usize..],
                "start={start}"
            );
        }
    }

    #[test]
    fn complete_enumerates_all_patterns_once() {
        let mut g = CompletePaired::new(BASE.to_vec(), 8);
        let all = collect_all(&mut g, 6);
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], BASE.to_vec());
        let mut uniq = all.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn complete_skip_equals_iterate() {
        let all = collect_all(&mut CompletePaired::new(BASE.to_vec(), 8), 6);
        for start in 0..8u64 {
            let mut g = CompletePaired::new(BASE.to_vec(), 8);
            g.skip(start);
            assert_eq!(
                collect_range(&mut g, 6, 2),
                all[start as usize..(start as usize + 2).min(8)]
            );
        }
    }

    #[test]
    fn complete_pattern_matches_bits() {
        // Pattern 5 = 0b101 flips pairs 0 and 2.
        let mut g = CompletePaired::new(BASE.to_vec(), 8);
        g.skip(5);
        let mut out = [0u8; 6];
        assert!(g.next_into(&mut out));
        let mut expect = BASE;
        expect.swap(0, 1);
        expect.swap(4, 5);
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_distribution_is_balanced() {
        // Over many draws each pair should flip about half the time.
        let n = 4000u64;
        let mut g = PairFlipSequential::new(BASE.to_vec(), n + 1, 99);
        let mut out = [0u8; 6];
        let mut flips = [0usize; 3];
        g.next_into(&mut out); // identity
        for _ in 0..n {
            assert!(g.next_into(&mut out));
            for j in 0..3 {
                if out[2 * j] != BASE[2 * j] {
                    flips[j] += 1;
                }
            }
        }
        for &f in &flips {
            assert!((f as f64 - n as f64 / 2.0).abs() < 5.0 * (n as f64 / 4.0).sqrt());
        }
    }
}
