//! The semantics layer over [`ResamplingStream`]: what a draw *means* and
//! how to build the right stream for a validated run.
//!
//! The resampling machinery splits into two layers:
//!
//! ```text
//!   consumers (engine, serial path, jobd spans, checkpoint digests)
//!        │ interpret draws via
//!        ▼
//!   Arrangement           — LabelShuffle | PairSignFlip | BlockShuffle
//!                           | BootstrapDraw  (semantics: what the bytes mean)
//!        │ carried by
//!        ▼
//!   StreamPlan { stream, arrangement }
//!        │ wraps
//!        ▼
//!   ResamplingStream      — deterministic, skip-ahead draw stream
//!                           (shuffle/paired/block/bootstrap families)
//! ```
//!
//! The three permutation arrangements all emit *label vectors* (byte `i` is
//! the class of sample column `i`); [`Arrangement::BootstrapDraw`] emits
//! *index vectors* (byte `i` is the source column resampled into slot `i`).
//! Consumers branch on [`Arrangement::is_index_vector`] — never on the
//! concrete stream type — which is what keeps the engine, the checkpoint
//! digests and the cross-daemon span splitting agnostic to how draws are
//! produced.

use super::bootstrap::{BootstrapFixedSeed, BootstrapSequential, MAX_BOOTSTRAP_COLS};
use super::{build_generator, stored, ResamplingStream};
use crate::error::{Error, Result};
use crate::labels::{ClassLabels, Design};
use crate::options::{PmaxtOptions, SamplingMode, Workload};

/// What the bytes of a draw mean to a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrangement {
    /// Multiset permutation of the observed class labels (t, t.equalvar,
    /// wilcoxon, f, corr, tmax). Byte `i` is the class of sample column `i`.
    LabelShuffle,
    /// Within-pair orientation flips (pairt). Still a label vector; the
    /// stream only ever swaps the two labels inside each pair.
    PairSignFlip,
    /// Within-block permutation of treatments (blockf). Still a label
    /// vector; classes move only inside their block.
    BlockShuffle,
    /// Sample-with-replacement bootstrap draw. Byte `i` is the *index* of
    /// the source column resampled into slot `i`; labels ride along with
    /// their columns.
    BootstrapDraw,
}

impl Arrangement {
    /// True when draws are label vectors (byte `i` = class of column `i`).
    pub fn is_label_vector(self) -> bool {
        !self.is_index_vector()
    }

    /// True when draws are index vectors (byte `i` = source column of
    /// slot `i`).
    pub fn is_index_vector(self) -> bool {
        matches!(self, Arrangement::BootstrapDraw)
    }

    /// Stable wire/debug name.
    pub fn as_str(self) -> &'static str {
        match self {
            Arrangement::LabelShuffle => "label-shuffle",
            Arrangement::PairSignFlip => "pair-sign-flip",
            Arrangement::BlockShuffle => "block-shuffle",
            Arrangement::BootstrapDraw => "bootstrap-draw",
        }
    }
}

/// A stream paired with the semantics its draws carry.
pub struct StreamPlan {
    /// The deterministic draw stream.
    pub stream: Box<dyn ResamplingStream>,
    /// How consumers must interpret each draw.
    pub arrangement: Arrangement,
}

/// The arrangement a validated run's draws carry, before building a stream.
pub fn arrangement_for(labels: &ClassLabels, opts: &PmaxtOptions) -> Arrangement {
    if opts.workload == Workload::Bootstrap {
        return Arrangement::BootstrapDraw;
    }
    match labels.design() {
        Design::TwoSample { .. } | Design::MultiClass { .. } => Arrangement::LabelShuffle,
        Design::Paired { .. } => Arrangement::PairSignFlip,
        Design::Block { .. } => Arrangement::BlockShuffle,
    }
}

/// Resolve the effective draw count for a run under its workload: permutation
/// runs go through [`super::resolve_permutation_count`] (complete counts for
/// `B = 0`), bootstrap runs require an explicit replicate count `B ≥ 2` —
/// there is no "complete" bootstrap enumeration to fall back to.
pub fn resolve_draw_count(labels: &ClassLabels, opts: &PmaxtOptions) -> Result<u64> {
    match opts.workload {
        Workload::Pmaxt => super::resolve_permutation_count(labels, opts),
        Workload::Bootstrap => {
            if opts.b < 2 {
                return Err(Error::BadOption {
                    param: "b",
                    value: format!(
                        "{} (bootstrap needs an explicit replicate count B >= 2; \
                         complete enumeration does not exist for with-replacement draws)",
                        opts.b
                    ),
                });
            }
            Ok(opts.b)
        }
    }
}

/// Build the stream + semantics for a validated run. `b_resolved` must come
/// from [`resolve_draw_count`].
pub fn build_stream(
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b_resolved: u64,
) -> Result<StreamPlan> {
    let arrangement = arrangement_for(labels, opts);
    let stream: Box<dyn ResamplingStream> = match opts.workload {
        Workload::Pmaxt => build_generator(labels, opts, b_resolved)?,
        Workload::Bootstrap => {
            let n = labels.len();
            if n > MAX_BOOTSTRAP_COLS {
                return Err(Error::BadLabels(format!(
                    "bootstrap draws index columns as bytes, which caps the \
                     sample count at {MAX_BOOTSTRAP_COLS}; dataset has {n} columns"
                )));
            }
            match opts.sampling {
                SamplingMode::FixedSeedOnTheFly => {
                    Box::new(BootstrapFixedSeed::new(n, b_resolved, opts.seed))
                }
                SamplingMode::Stored => {
                    let mut seq = BootstrapSequential::new(n, b_resolved, opts.seed);
                    Box::new(stored::StoredMatrix::materialize(&mut seq, n))
                }
            }
        }
    };
    Ok(StreamPlan {
        stream,
        arrangement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TestMethod;
    use crate::perm::test_support::collect_all;

    fn opts() -> PmaxtOptions {
        PmaxtOptions::default()
    }

    fn two_sample() -> ClassLabels {
        ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap()
    }

    #[test]
    fn arrangement_tracks_design_and_workload() {
        let o = opts();
        assert_eq!(
            arrangement_for(&two_sample(), &o),
            Arrangement::LabelShuffle
        );
        let pl = ClassLabels::new(vec![0, 1, 0, 1], TestMethod::PairT).unwrap();
        assert_eq!(
            arrangement_for(&pl, &o.clone().test(TestMethod::PairT)),
            Arrangement::PairSignFlip
        );
        let bl = ClassLabels::new(vec![0, 1, 0, 1], TestMethod::BlockF).unwrap();
        assert_eq!(
            arrangement_for(&bl, &o.clone().test(TestMethod::BlockF)),
            Arrangement::BlockShuffle
        );
        let boot = o.clone().workload(Workload::Bootstrap);
        assert_eq!(
            arrangement_for(&two_sample(), &boot),
            Arrangement::BootstrapDraw
        );
        assert!(Arrangement::BootstrapDraw.is_index_vector());
        assert!(Arrangement::LabelShuffle.is_label_vector());
    }

    #[test]
    fn permutation_plan_matches_build_generator_stream() {
        let labels = two_sample();
        let o = opts().permutations(9);
        let plan = build_stream(&labels, &o, 9).unwrap();
        assert_eq!(plan.arrangement, Arrangement::LabelShuffle);
        let mut legacy = build_generator(&labels, &o, 9).unwrap();
        let mut via_plan = plan.stream;
        assert_eq!(
            collect_all(&mut *via_plan, 4),
            collect_all(&mut *legacy, 4),
            "the plan must wrap the exact legacy stream"
        );
    }

    #[test]
    fn bootstrap_plan_builds_fixed_seed_and_stored() {
        let labels = two_sample();
        let o = opts().workload(Workload::Bootstrap).permutations(8);
        let b = resolve_draw_count(&labels, &o).unwrap();
        assert_eq!(b, 8);
        let plan = build_stream(&labels, &o, b).unwrap();
        assert_eq!(plan.arrangement, Arrangement::BootstrapDraw);
        let mut stream = plan.stream;
        let rows = collect_all(&mut *stream, 4);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0], vec![0, 1, 2, 3], "identity draw first");

        // Stored mode materializes the sequential twin.
        let o_stored = o.clone().fixed_seed_sampling("n").unwrap();
        let plan = build_stream(&labels, &o_stored, 8).unwrap();
        let mut seq = BootstrapSequential::new(4, 8, o_stored.seed);
        assert_eq!(
            collect_all(&mut *{ plan.stream }, 4),
            collect_all(&mut seq, 4)
        );
    }

    #[test]
    fn bootstrap_refuses_complete_and_tiny_b() {
        let labels = two_sample();
        for b in [0u64, 1] {
            let o = opts().workload(Workload::Bootstrap).permutations(b);
            match resolve_draw_count(&labels, &o) {
                Err(Error::BadOption { param: "b", .. }) => {}
                other => panic!("expected BadOption for b={b}, got {other:?}"),
            }
        }
    }

    #[test]
    fn bootstrap_refuses_wide_datasets() {
        let mut v = vec![0u8; 150];
        v.extend(vec![1u8; 150]);
        let labels = ClassLabels::new(v, TestMethod::T).unwrap();
        let o = opts().workload(Workload::Bootstrap).permutations(10);
        match build_stream(&labels, &o, 10) {
            Err(Error::BadLabels(msg)) => assert!(msg.contains("256")),
            other => panic!("expected BadLabels, got {:?}", other.map(|_| ())),
        }
    }
}
