//! Generators for the block design (`blockf`): a permutation independently
//! rearranges the treatment labels *within* each block. Complete enumeration
//! has `(k!)^m` arrangements — "a huge amount of permutations" (paper §3.1) —
//! which is why this method is never stored in memory.

use super::PermutationGenerator;
use crate::rng::{mix_seed, Xoshiro256};

/// Write the permutation of `0..k` with Lehmer (factoradic) index `idx` into
/// `perm`. Index 0 is the identity.
pub(crate) fn lehmer_unrank(mut idx: u64, perm: &mut [u8]) {
    let k = perm.len();
    // Factoradic digits: idx = Σ d_i · (k−1−i)!, 0 ≤ d_i ≤ k−1−i.
    let mut avail: Vec<u8> = (0..k as u8).collect();
    // fact starts at (k−1)! and is divided down to 0! as positions fill.
    let mut fact: u64 = (1..k as u64).product::<u64>().max(1);
    for (i, slot) in perm.iter_mut().enumerate() {
        let d = (idx / fact) as usize;
        idx %= fact;
        *slot = avail.remove(d);
        fact = fact.checked_div((k - 1 - i) as u64).unwrap_or(1);
    }
}

/// Monte-Carlo within-block shuffles with fixed-seed sampling. Index 0 is the
/// observed labelling; `skip` is O(1).
#[derive(Debug, Clone)]
pub struct BlockShuffleFixedSeed {
    base: Vec<u8>,
    blocks: usize,
    k: usize,
    seed: u64,
    cursor: u64,
    len: u64,
}

impl BlockShuffleFixedSeed {
    /// `base` is the observed labelling of `blocks` consecutive blocks of `k`.
    pub fn new(base: Vec<u8>, k: usize, len: u64, seed: u64) -> Self {
        let blocks = base.len() / k;
        BlockShuffleFixedSeed {
            base,
            blocks,
            k,
            seed,
            cursor: 0,
            len,
        }
    }
}

impl PermutationGenerator for BlockShuffleFixedSeed {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        out.copy_from_slice(&self.base);
        if self.cursor > 0 {
            let mut rng = Xoshiro256::seed_from(mix_seed(self.seed, self.cursor));
            for b in 0..self.blocks {
                rng.shuffle(&mut out[b * self.k..(b + 1) * self.k]);
            }
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

/// Monte-Carlo within-block shuffles from one sequential stream (the
/// `fixed.seed.sampling = "n"` request, which for `blockf` is still served
/// on-the-fly — the paper: "the option is available, but the code is again
/// implemented using the on-the-fly generator"). Each non-identity step
/// consumes exactly `m·(k−1)` draws on a persistent working vector.
#[derive(Debug, Clone)]
pub struct BlockShuffleSequential {
    work: Vec<u8>,
    blocks: usize,
    k: usize,
    rng: Xoshiro256,
    cursor: u64,
    len: u64,
}

impl BlockShuffleSequential {
    /// `base` is the observed labelling.
    pub fn new(base: Vec<u8>, k: usize, len: u64, seed: u64) -> Self {
        let blocks = base.len() / k;
        BlockShuffleSequential {
            work: base,
            blocks,
            k,
            rng: Xoshiro256::seed_from(seed),
            cursor: 0,
            len,
        }
    }

    fn advance_one(&mut self) {
        if self.cursor > 0 {
            for b in 0..self.blocks {
                let block = &mut self.work[b * self.k..(b + 1) * self.k];
                for i in (1..block.len()).rev() {
                    let j = self.rng.next_below(i as u64 + 1) as usize;
                    block.swap(i, j);
                }
            }
        }
        self.cursor += 1;
    }
}

impl PermutationGenerator for BlockShuffleSequential {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        self.advance_one();
        out.copy_from_slice(&self.work);
        true
    }

    fn skip(&mut self, n: u64) {
        let target = self.cursor.saturating_add(n).min(self.len);
        while self.cursor < target {
            self.advance_one();
        }
    }
}

/// Complete enumeration of all `(k!)^m` within-block arrangements via a
/// mixed-radix counter: arrangement index `b` applies the permutation with
/// Lehmer index `(b / (k!)^j) mod k!` to block `j`'s observed labels. Index 0
/// applies the identity everywhere, so the identity-first convention holds
/// naturally. `skip` is O(1).
#[derive(Debug, Clone)]
pub struct CompleteBlock {
    base: Vec<u8>,
    blocks: usize,
    k: usize,
    kfact: u64,
    cursor: u64,
    len: u64,
    perm_buf: Vec<u8>,
}

impl CompleteBlock {
    /// `base` is the observed labelling; `len` must equal `(k!)^m` (already
    /// validated against the cap, hence it fits in u64).
    pub fn new(base: Vec<u8>, k: usize, len: u64) -> Self {
        let blocks = base.len() / k;
        let kfact: u64 = (1..=k as u64).product();
        CompleteBlock {
            base,
            blocks,
            k,
            kfact,
            cursor: 0,
            len,
            perm_buf: vec![0; k],
        }
    }
}

impl PermutationGenerator for CompleteBlock {
    fn len(&self) -> u64 {
        self.len
    }

    fn position(&self) -> u64 {
        self.cursor
    }

    fn next_into(&mut self, out: &mut [u8]) -> bool {
        if self.cursor >= self.len {
            return false;
        }
        let mut idx = self.cursor;
        for b in 0..self.blocks {
            let digit = idx % self.kfact;
            idx /= self.kfact;
            lehmer_unrank(digit, &mut self.perm_buf);
            let src = &self.base[b * self.k..(b + 1) * self.k];
            let dst = &mut out[b * self.k..(b + 1) * self.k];
            for (pos, &p) in self.perm_buf.iter().enumerate() {
                dst[pos] = src[p as usize];
            }
        }
        self.cursor += 1;
        true
    }

    fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.saturating_add(n).min(self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::test_support::{collect_all, collect_range};

    // Two blocks of three treatments; block 2's observed order is not sorted.
    const BASE: [u8; 6] = [0, 1, 2, 2, 0, 1];

    fn blocks_valid(labels: &[u8], k: usize) {
        for b in 0..labels.len() / k {
            let mut seen = vec![false; k];
            for &l in &labels[b * k..(b + 1) * k] {
                assert!(!seen[l as usize], "repeat in block {b} of {labels:?}");
                seen[l as usize] = true;
            }
        }
    }

    #[test]
    fn lehmer_unrank_enumerates_sym3() {
        let mut seen = Vec::new();
        let mut p = [0u8; 3];
        for idx in 0..6 {
            lehmer_unrank(idx, &mut p);
            seen.push(p.to_vec());
        }
        assert_eq!(seen[0], vec![0, 1, 2], "index 0 is identity");
        let mut uniq = seen.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    fn lehmer_unrank_identity_for_k1() {
        let mut p = [0u8; 1];
        lehmer_unrank(0, &mut p);
        assert_eq!(p, [0]);
    }

    #[test]
    fn fixed_seed_identity_first_and_blocks_valid() {
        let mut g = BlockShuffleFixedSeed::new(BASE.to_vec(), 3, 25, 11);
        let all = collect_all(&mut g, 6);
        assert_eq!(all[0], BASE.to_vec());
        for labels in &all {
            blocks_valid(labels, 3);
        }
    }

    #[test]
    fn fixed_seed_skip_equals_iterate() {
        let all = collect_all(&mut BlockShuffleFixedSeed::new(BASE.to_vec(), 3, 20, 11), 6);
        for start in [0u64, 1, 6, 19] {
            let mut g = BlockShuffleFixedSeed::new(BASE.to_vec(), 3, 20, 11);
            g.skip(start);
            assert_eq!(collect_all(&mut g, 6), all[start as usize..]);
        }
    }

    #[test]
    fn sequential_skip_equals_iterate() {
        let all = collect_all(
            &mut BlockShuffleSequential::new(BASE.to_vec(), 3, 20, 11),
            6,
        );
        assert_eq!(all[0], BASE.to_vec());
        for labels in &all {
            blocks_valid(labels, 3);
        }
        for start in [0u64, 1, 9, 19] {
            let mut g = BlockShuffleSequential::new(BASE.to_vec(), 3, 20, 11);
            g.skip(start);
            assert_eq!(
                collect_all(&mut g, 6),
                all[start as usize..],
                "start={start}"
            );
        }
    }

    #[test]
    fn complete_enumerates_all_once() {
        // (3!)^2 = 36 arrangements.
        let mut g = CompleteBlock::new(BASE.to_vec(), 3, 36);
        let all = collect_all(&mut g, 6);
        assert_eq!(all.len(), 36);
        assert_eq!(all[0], BASE.to_vec(), "identity first");
        let mut uniq = all.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 36);
        for labels in &all {
            blocks_valid(labels, 3);
        }
    }

    #[test]
    fn complete_skip_equals_iterate() {
        let all = collect_all(&mut CompleteBlock::new(BASE.to_vec(), 3, 36), 6);
        for start in [0u64, 1, 17, 35] {
            let mut g = CompleteBlock::new(BASE.to_vec(), 3, 36);
            g.skip(start);
            assert_eq!(
                collect_range(&mut g, 6, 4),
                all[start as usize..(start as usize + 4).min(36)]
            );
        }
    }

    #[test]
    fn complete_two_treatments() {
        // k = 2, m = 3: (2!)^3 = 8 arrangements.
        let base = vec![0u8, 1, 1, 0, 0, 1];
        let all = collect_all(&mut CompleteBlock::new(base.clone(), 2, 8), 6);
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], base);
        let mut uniq = all;
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }
}
