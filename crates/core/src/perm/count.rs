//! Overflow-checked counting of complete permutation spaces.
//!
//! The paper: *"the implementation can execute a permutation count only
//! limited by the precision of the underlying CPU architecture"* and, when a
//! complete enumeration is too large, *"the user is asked to explicitly
//! request a smaller number of permutations"*. All counts here are `u128`
//! with `None` signalling overflow.

/// `C(n, k)` with overflow checking, via the multiplicative formula.
pub fn checked_binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1); the division is exact at each step because
        // acc holds C(n, i+1) * (i+1)! / ... — classic binomial recurrence.
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// Number of distinct arrangements of a multiset with the given per-class
/// counts: `n! / ∏ cᵢ!`, computed as a product of binomials to avoid
/// intermediate factorial overflow.
pub fn multiset_count(counts: &[usize]) -> Option<u128> {
    let mut remaining: u64 = counts.iter().map(|&c| c as u64).sum();
    let mut acc: u128 = 1;
    for &c in counts {
        acc = acc.checked_mul(checked_binomial(remaining, c as u64)?)?;
        remaining -= c as u64;
    }
    Some(acc)
}

/// `k!` with overflow checking.
pub fn checked_factorial(k: u64) -> Option<u128> {
    let mut acc: u128 = 1;
    for i in 2..=k as u128 {
        acc = acc.checked_mul(i)?;
    }
    Some(acc)
}

/// `base^exp` with overflow checking.
pub fn checked_pow(base: u128, exp: u64) -> Option<u128> {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

/// `2^pairs` sign-flip patterns for the paired design.
pub fn paired_count(pairs: usize) -> Option<u128> {
    if pairs >= 128 {
        None
    } else {
        Some(1u128 << pairs)
    }
}

/// `(k!)^m` within-block arrangements for the block design.
pub fn block_count(blocks: usize, treatments: usize) -> Option<u128> {
    let kfact = checked_factorial(treatments as u64)?;
    checked_pow(kfact, blocks as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(checked_binomial(5, 2), Some(10));
        assert_eq!(checked_binomial(10, 0), Some(1));
        assert_eq!(checked_binomial(10, 10), Some(1));
        assert_eq!(checked_binomial(4, 7), Some(0));
        assert_eq!(checked_binomial(52, 5), Some(2_598_960));
    }

    #[test]
    fn binomial_known_midsize_value() {
        assert_eq!(checked_binomial(50, 25), Some(126_410_606_437_752));
    }

    #[test]
    fn binomial_matches_pascal_triangle() {
        // Independent check by Pascal's recurrence up to the paper's n = 76.
        let n_max = 76usize;
        let mut row: Vec<u128> = vec![1];
        for n in 1..=n_max {
            let mut next = vec![1u128; n + 1];
            for (k, slot) in next.iter_mut().enumerate().take(n).skip(1) {
                *slot = row[k - 1] + row[k];
            }
            row = next;
        }
        for (k, &expected) in row.iter().enumerate() {
            assert_eq!(checked_binomial(76, k as u64), Some(expected), "k={k}");
        }
    }

    #[test]
    fn binomial_overflow_detected() {
        // C(400, 200) far exceeds u128.
        assert_eq!(checked_binomial(400, 200), None);
    }

    #[test]
    fn multiset_matches_binomial_for_two_classes() {
        assert_eq!(multiset_count(&[3, 2]), checked_binomial(5, 2));
        assert_eq!(multiset_count(&[38, 38]), checked_binomial(76, 38));
    }

    #[test]
    fn multiset_three_classes() {
        // 6!/(2!2!2!) = 90.
        assert_eq!(multiset_count(&[2, 2, 2]), Some(90));
        // 4!/(1!1!2!) = 12.
        assert_eq!(multiset_count(&[1, 1, 2]), Some(12));
    }

    #[test]
    fn factorial_values_and_overflow() {
        assert_eq!(checked_factorial(0), Some(1));
        assert_eq!(checked_factorial(5), Some(120));
        assert_eq!(checked_factorial(12), Some(479_001_600));
        // 34! still fits in u128; 35! overflows.
        let f33 = checked_factorial(33).unwrap();
        assert_eq!(checked_factorial(34), f33.checked_mul(34).map(|_| f33 * 34));
        assert_eq!(checked_factorial(35), None);
    }

    #[test]
    fn paired_counts() {
        assert_eq!(paired_count(3), Some(8));
        assert_eq!(paired_count(127), Some(1u128 << 127));
        assert_eq!(paired_count(128), None);
    }

    #[test]
    fn block_counts() {
        // (3!)^2 = 36; (2!)^10 = 1024.
        assert_eq!(block_count(2, 3), Some(36));
        assert_eq!(block_count(10, 2), Some(1024));
        // Explodes fast: (10!)^20 overflows.
        assert_eq!(block_count(20, 10), None);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(checked_pow(2, 10), Some(1024));
        assert_eq!(checked_pow(1, 1000), Some(1));
        assert_eq!(checked_pow(u128::MAX, 2), None);
        assert_eq!(checked_pow(7, 0), Some(1));
    }
}
