//! Iterator adapter over permutation generators, for ergonomic downstream
//! use (the generator trait itself is buffer-oriented for the hot kernel).

use super::PermutationGenerator;

/// Owned iterator yielding each label arrangement as a fresh `Vec<u8>`.
pub struct Permutations {
    gen: Box<dyn PermutationGenerator>,
    cols: usize,
}

impl Permutations {
    /// Wrap a generator producing arrangements of `cols` labels.
    pub fn new(gen: Box<dyn PermutationGenerator>, cols: usize) -> Self {
        Permutations { gen, cols }
    }

    /// Remaining arrangements.
    pub fn remaining(&self) -> u64 {
        self.gen.len() - self.gen.position()
    }

    /// Skip `n` arrangements (delegates to the generator's cheap skip).
    pub fn skip_ahead(&mut self, n: u64) {
        self.gen.skip(n);
    }
}

impl Iterator for Permutations {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        let mut buf = vec![0u8; self.cols];
        if self.gen.next_into(&mut buf) {
            Some(buf)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Permutations {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::ClassLabels;
    use crate::options::{PmaxtOptions, TestMethod};
    use crate::perm::build_generator;

    fn make(b: u64) -> Permutations {
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(b);
        Permutations::new(build_generator(&labels, &opts, b).unwrap(), 4)
    }

    #[test]
    fn yields_exactly_len_items() {
        let perms: Vec<_> = make(7).collect();
        assert_eq!(perms.len(), 7);
        assert_eq!(perms[0], vec![0, 0, 1, 1], "identity first");
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = make(5);
        assert_eq!(it.size_hint(), (5, Some(5)));
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn skip_ahead_matches_manual_drop() {
        let all: Vec<_> = make(10).collect();
        let mut it = make(10);
        it.skip_ahead(4);
        let tail: Vec<_> = it.collect();
        assert_eq!(tail, all[4..]);
    }

    #[test]
    fn composes_with_iterator_adapters() {
        let distinct: std::collections::HashSet<Vec<u8>> = make(30).collect();
        // 30 random shuffles of a 4-column two-class design hit all 6
        // arrangements with near-certainty; at minimum the identity is there.
        assert!(distinct.contains(&vec![0, 0, 1, 1]));
        assert!(distinct.len() <= 6);
    }
}
