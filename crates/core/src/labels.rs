//! Class labels and per-method experimental designs.
//!
//! `classlabel` assigns each sample column to a group. Its valid shapes depend
//! on the test statistic, following the `multtest` conventions:
//!
//! - two-sample tests (`t`, `t.equalvar`, `wilcoxon`): labels in `{0, 1}`;
//! - `f`: labels in `{0, …, k−1}` with `k ≥ 2`;
//! - `pairt`: `n = 2m` columns; columns `2j` and `2j+1` form pair `j` and
//!   carry labels `{0, 1}` in some order;
//! - `blockf`: `n = m·k` columns; each consecutive block of `k` columns
//!   contains every treatment `0, …, k−1` exactly once.

use crate::error::{Error, Result};
use crate::options::TestMethod;

/// The structural interpretation of a label vector for a given test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Design {
    /// Two groups with sizes `n0`, `n1`.
    TwoSample {
        /// Size of group 0.
        n0: usize,
        /// Size of group 1.
        n1: usize,
    },
    /// `k ≥ 2` groups with the given per-class sizes (index = class).
    MultiClass {
        /// Per-class column counts.
        counts: Vec<usize>,
    },
    /// `pairs` consecutive (0,1) pairs.
    Paired {
        /// Number of pairs `m`.
        pairs: usize,
    },
    /// `blocks` consecutive blocks of `treatments` columns each.
    Block {
        /// Number of blocks `m`.
        blocks: usize,
        /// Number of treatments `k` per block.
        treatments: usize,
    },
}

/// A validated label vector bound to a test method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLabels {
    labels: Vec<u8>,
    design: Design,
}

impl ClassLabels {
    /// Validate `labels` for `method` and construct.
    pub fn new(labels: Vec<u8>, method: TestMethod) -> Result<Self> {
        let design = Self::validate(&labels, method)?;
        Ok(ClassLabels { labels, design })
    }

    /// Convenience: validate i32 labels as R would supply them.
    pub fn from_ints(labels: &[i32], method: TestMethod) -> Result<Self> {
        let mut out = Vec::with_capacity(labels.len());
        for &l in labels {
            if !(0..=255).contains(&l) {
                return Err(Error::BadLabels(format!(
                    "label {l} outside supported range 0..=255"
                )));
            }
            out.push(l as u8);
        }
        Self::new(out, method)
    }

    fn validate(labels: &[u8], method: TestMethod) -> Result<Design> {
        if labels.is_empty() {
            return Err(Error::BadLabels("label vector is empty".into()));
        }
        match method {
            TestMethod::T | TestMethod::TEqualVar | TestMethod::Wilcoxon | TestMethod::TMax => {
                let mut n = [0usize; 2];
                for &l in labels {
                    if l > 1 {
                        return Err(Error::BadLabels(format!(
                            "two-sample tests require labels in {{0,1}}, found {l}"
                        )));
                    }
                    n[l as usize] += 1;
                }
                // Variance-based statistics need at least two observations per
                // group; the rank-sum needs at least one in each.
                let min = if method == TestMethod::Wilcoxon { 1 } else { 2 };
                if n[0] < min || n[1] < min {
                    return Err(Error::BadLabels(format!(
                        "group sizes {}+{} too small for '{}' (need ≥{min} each)",
                        n[0],
                        n[1],
                        method.as_str()
                    )));
                }
                Ok(Design::TwoSample { n0: n[0], n1: n[1] })
            }
            TestMethod::F => {
                let k = labels.iter().copied().max().unwrap() as usize + 1;
                if k < 2 {
                    return Err(Error::BadLabels(
                        "f-test requires at least two classes".into(),
                    ));
                }
                let mut counts = vec![0usize; k];
                for &l in labels {
                    counts[l as usize] += 1;
                }
                if counts.contains(&0) {
                    return Err(Error::BadLabels(
                        "f-test labels must use every class 0..k-1".into(),
                    ));
                }
                if labels.len() <= k {
                    return Err(Error::BadLabels(
                        "f-test needs more observations than classes (error df ≥ 1)".into(),
                    ));
                }
                Ok(Design::MultiClass { counts })
            }
            TestMethod::Corr => {
                // Correlation against the numeric label values: any ordered
                // class coding 0..k-1 with k ≥ 2; point-biserial when k = 2.
                let k = labels.iter().copied().max().unwrap() as usize + 1;
                if k < 2 {
                    return Err(Error::BadLabels(
                        "correlation requires at least two distinct label values".into(),
                    ));
                }
                let mut counts = vec![0usize; k];
                for &l in labels {
                    counts[l as usize] += 1;
                }
                if counts.contains(&0) {
                    return Err(Error::BadLabels(
                        "correlation labels must use every value 0..k-1".into(),
                    ));
                }
                if labels.len() < 3 {
                    return Err(Error::BadLabels(
                        "correlation needs at least three observations".into(),
                    ));
                }
                Ok(Design::MultiClass { counts })
            }
            TestMethod::PairT => {
                if !labels.len().is_multiple_of(2) {
                    return Err(Error::BadLabels(
                        "paired t requires an even number of columns".into(),
                    ));
                }
                let pairs = labels.len() / 2;
                if pairs < 2 {
                    return Err(Error::BadLabels(
                        "paired t requires at least two pairs".into(),
                    ));
                }
                for j in 0..pairs {
                    let a = labels[2 * j];
                    let b = labels[2 * j + 1];
                    if !((a == 0 && b == 1) || (a == 1 && b == 0)) {
                        return Err(Error::BadLabels(format!(
                            "pair {j} has labels ({a},{b}); each consecutive pair must be 0/1"
                        )));
                    }
                }
                Ok(Design::Paired { pairs })
            }
            TestMethod::BlockF => {
                // Infer k = number of distinct treatments; columns come in m
                // consecutive blocks of k, each a permutation of 0..k-1.
                let k = labels.iter().copied().max().unwrap() as usize + 1;
                if k < 2 {
                    return Err(Error::BadLabels(
                        "block f requires at least two treatments".into(),
                    ));
                }
                if !labels.len().is_multiple_of(k) {
                    return Err(Error::BadLabels(format!(
                        "column count {} is not a multiple of treatment count {k}",
                        labels.len()
                    )));
                }
                let blocks = labels.len() / k;
                if blocks < 2 {
                    return Err(Error::BadLabels(
                        "block f requires at least two blocks".into(),
                    ));
                }
                let mut seen = vec![false; k];
                for b in 0..blocks {
                    seen.iter_mut().for_each(|s| *s = false);
                    for &l in &labels[b * k..(b + 1) * k] {
                        if seen[l as usize] {
                            return Err(Error::BadLabels(format!(
                                "block {b} repeats treatment {l}"
                            )));
                        }
                        seen[l as usize] = true;
                    }
                    // k labels, no repeats, all < k ⇒ complete.
                }
                Ok(Design::Block {
                    blocks,
                    treatments: k,
                })
            }
        }
    }

    /// The label values, one per sample column.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.labels
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no columns (cannot happen for a validated value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The validated design.
    #[inline]
    pub fn design(&self) -> &Design {
        &self.design
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sample_validates_and_counts() {
        let l = ClassLabels::new(vec![0, 0, 1, 1, 1], TestMethod::T).unwrap();
        assert_eq!(l.design(), &Design::TwoSample { n0: 2, n1: 3 });
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn two_sample_rejects_bad_labels() {
        assert!(ClassLabels::new(vec![0, 1, 2], TestMethod::T).is_err());
        assert!(ClassLabels::new(vec![0, 0, 0], TestMethod::T).is_err());
        assert!(ClassLabels::new(vec![], TestMethod::T).is_err());
        // One observation in a group: fine for wilcoxon, not for t.
        assert!(ClassLabels::new(vec![0, 1, 1], TestMethod::T).is_err());
        assert!(ClassLabels::new(vec![0, 1, 1], TestMethod::Wilcoxon).is_ok());
    }

    #[test]
    fn f_design_counts_classes() {
        let l = ClassLabels::new(vec![0, 0, 1, 1, 2, 2, 2], TestMethod::F).unwrap();
        assert_eq!(
            l.design(),
            &Design::MultiClass {
                counts: vec![2, 2, 3]
            }
        );
    }

    #[test]
    fn f_rejects_gaps_and_tiny_designs() {
        // Class 1 missing.
        assert!(ClassLabels::new(vec![0, 0, 2, 2], TestMethod::F).is_err());
        // Only one class.
        assert!(ClassLabels::new(vec![0, 0, 0], TestMethod::F).is_err());
        // No error degrees of freedom (n == k).
        assert!(ClassLabels::new(vec![0, 1], TestMethod::F).is_err());
    }

    #[test]
    fn paired_design() {
        let l = ClassLabels::new(vec![0, 1, 1, 0, 0, 1], TestMethod::PairT).unwrap();
        assert_eq!(l.design(), &Design::Paired { pairs: 3 });
    }

    #[test]
    fn paired_rejects_malformed() {
        // Odd length.
        assert!(ClassLabels::new(vec![0, 1, 0], TestMethod::PairT).is_err());
        // A pair with equal labels.
        assert!(ClassLabels::new(vec![0, 0, 1, 1], TestMethod::PairT).is_err());
        // Single pair.
        assert!(ClassLabels::new(vec![0, 1], TestMethod::PairT).is_err());
    }

    #[test]
    fn block_design() {
        // Two blocks of three treatments.
        let l = ClassLabels::new(vec![0, 1, 2, 2, 0, 1], TestMethod::BlockF).unwrap();
        assert_eq!(
            l.design(),
            &Design::Block {
                blocks: 2,
                treatments: 3
            }
        );
    }

    #[test]
    fn block_rejects_malformed() {
        // Repeated treatment inside a block.
        assert!(ClassLabels::new(vec![0, 0, 1, 2, 1, 2], TestMethod::BlockF).is_err());
        // Length not a multiple of k.
        assert!(ClassLabels::new(vec![0, 1, 2, 0, 1], TestMethod::BlockF).is_err());
        // Single block.
        assert!(ClassLabels::new(vec![0, 1, 2], TestMethod::BlockF).is_err());
    }

    #[test]
    fn corr_design_accepts_multilevel_and_binary() {
        let l = ClassLabels::new(vec![0, 1, 2, 0, 1, 2], TestMethod::Corr).unwrap();
        assert_eq!(
            l.design(),
            &Design::MultiClass {
                counts: vec![2, 2, 2]
            }
        );
        // Binary labels (point-biserial) are fine with only 3 observations.
        assert!(ClassLabels::new(vec![0, 1, 1], TestMethod::Corr).is_ok());
    }

    #[test]
    fn corr_rejects_degenerate() {
        // Single value: zero label variance.
        assert!(ClassLabels::new(vec![0, 0, 0], TestMethod::Corr).is_err());
        // Gap in the coding.
        assert!(ClassLabels::new(vec![0, 2, 0, 2], TestMethod::Corr).is_err());
        // Too few observations.
        assert!(ClassLabels::new(vec![0, 1], TestMethod::Corr).is_err());
    }

    #[test]
    fn tmax_validates_like_two_sample_t() {
        let l = ClassLabels::new(vec![0, 0, 1, 1, 1], TestMethod::TMax).unwrap();
        assert_eq!(l.design(), &Design::TwoSample { n0: 2, n1: 3 });
        assert!(ClassLabels::new(vec![0, 1, 2], TestMethod::TMax).is_err());
        assert!(ClassLabels::new(vec![0, 1, 1], TestMethod::TMax).is_err());
    }

    #[test]
    fn from_ints_rejects_out_of_range() {
        assert!(ClassLabels::from_ints(&[0, 1, -1, 1], TestMethod::T).is_err());
        assert!(ClassLabels::from_ints(&[0, 0, 1, 1], TestMethod::T).is_ok());
        assert!(ClassLabels::from_ints(&[0, 0, 300, 1], TestMethod::T).is_err());
    }
}
