//! Byte codecs for `pmaxt`'s broadcast and gather payloads.
//!
//! The transport-generic [`Comm`](mpi_sim::Comm) trait moves raw bytes, so
//! everything a rank broadcasts (run parameters, the dataset) or gathers
//! (section profiles) needs an explicit wire form. The encoding is a plain
//! little-endian tag-free layout — fields in declaration order, strings and
//! vectors length-prefixed — chosen over a self-describing format because
//! both ends always run the same build (SPMD discipline) and the dataset
//! broadcast is the bandwidth-critical path (paper §4.4: "create data" is
//! the section that grows with the cluster).
//!
//! Floats travel as IEEE-754 bit patterns, never decimal round trips, so a
//! broadcast dataset is bit-identical on every rank — the precondition for
//! the bitwise-reproducibility contract to survive a real network.

use std::time::Duration;

use mpi_sim::SectionProfile;

use crate::error::{Error, Result};
use crate::options::{
    KernelChoice, Mode, PmaxtOptions, Precision, SamplingMode, TestMethod, Workload,
};
use crate::side::Side;

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Sequential reader over an encoded payload, with typed errors instead of
/// panics so a torn or corrupted frame surfaces as a [`Error::Comm`].
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Comm(format!(
                "wire payload truncated: wanted {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.buf.len()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Comm("wire payload holds invalid UTF-8".into()))
    }

    /// Read a length-prefixed byte vector.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Error unless the whole payload was consumed — trailing garbage means
    /// the two ends disagree about the layout.
    pub fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::Comm(format!(
                "wire payload has {} unread trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Encode a full [`PmaxtOptions`]: enums by their R string forms (stable
/// across builds), numerics by value.
pub fn encode_options(opts: &PmaxtOptions, buf: &mut Vec<u8>) {
    put_str(buf, opts.test.as_str());
    put_str(buf, opts.side.as_str());
    put_str(buf, opts.sampling.as_str());
    put_u64(buf, opts.b);
    match opts.na {
        Some(code) => {
            put_u64(buf, 1);
            put_f64(buf, code);
        }
        None => put_u64(buf, 0),
    }
    put_u64(buf, opts.nonpara as u64);
    put_u64(buf, opts.seed);
    put_u64(buf, opts.max_complete);
    put_str(buf, opts.kernel.as_str());
    put_u64(buf, opts.threads as u64);
    put_u64(buf, opts.batch as u64);
    put_str(buf, opts.precision.as_str());
    put_str(buf, opts.mode.as_str());
    put_str(buf, opts.workload.as_str());
}

/// Decode the options encoded by [`encode_options`].
pub fn decode_options(r: &mut Reader<'_>) -> Result<PmaxtOptions> {
    let test = TestMethod::parse(&r.str()?)?;
    let side = Side::parse(&r.str()?)?;
    let sampling = SamplingMode::parse(&r.str()?)?;
    let b = r.u64()?;
    let na = match r.u64()? {
        0 => None,
        _ => Some(r.f64()?),
    };
    let nonpara = r.u64()? != 0;
    let seed = r.u64()?;
    let max_complete = r.u64()?;
    let kernel = KernelChoice::parse(&r.str()?)?;
    let threads = r.u64()? as usize;
    let batch = r.u64()? as usize;
    let precision = Precision::parse(&r.str()?)?;
    let mode = Mode::parse(&r.str()?)?;
    let workload = Workload::parse(&r.str()?)?;
    Ok(PmaxtOptions {
        test,
        side,
        sampling,
        b,
        na,
        nonpara,
        seed,
        max_complete,
        kernel,
        threads,
        batch,
        precision,
        mode,
        workload,
    })
}

/// Encode an `f64` slice as bit patterns (the dataset broadcast).
pub fn encode_f64_vec(values: &[f64], buf: &mut Vec<u8>) {
    put_u64(buf, values.len() as u64);
    for v in values {
        put_f64(buf, *v);
    }
}

/// Decode the vector encoded by [`encode_f64_vec`].
pub fn decode_f64_vec(r: &mut Reader<'_>) -> Result<Vec<f64>> {
    let len = r.u64()? as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        out.push(r.f64()?);
    }
    Ok(out)
}

/// Encode a section profile as `(name, nanoseconds)` pairs in order.
pub fn encode_profile(profile: &SectionProfile) -> Vec<u8> {
    let sections: Vec<(&str, Duration)> = profile.iter().collect();
    let mut buf = Vec::new();
    put_u64(&mut buf, sections.len() as u64);
    for (name, dur) in sections {
        put_str(&mut buf, name);
        put_u64(&mut buf, dur.as_nanos() as u64);
    }
    buf
}

/// Decode the profile encoded by [`encode_profile`].
pub fn decode_profile(bytes: &[u8]) -> Result<SectionProfile> {
    let mut r = Reader::new(bytes);
    let n = r.u64()? as usize;
    let mut sections = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = r.str()?;
        let nanos = r.u64()?;
        sections.push((name, Duration::from_nanos(nanos)));
    }
    r.finish()?;
    Ok(SectionProfile::from_sections(sections))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip_every_enum_and_edge() {
        for test in TestMethod::ALL {
            for side in [Side::Abs, Side::Upper, Side::Lower] {
                let opts = PmaxtOptions {
                    test,
                    side,
                    sampling: SamplingMode::Stored,
                    b: u64::MAX,
                    na: Some(-99.5),
                    nonpara: true,
                    seed: 0,
                    max_complete: 1,
                    kernel: KernelChoice::Scalar,
                    threads: 7,
                    batch: 1024,
                    precision: Precision::F32,
                    mode: Mode::Adaptive,
                    workload: Workload::Bootstrap,
                };
                let mut buf = Vec::new();
                encode_options(&opts, &mut buf);
                let mut r = Reader::new(&buf);
                let back = decode_options(&mut r).unwrap();
                r.finish().unwrap();
                assert_eq!(back, opts);
            }
        }
        // Defaults round-trip too (na = None branch).
        let opts = PmaxtOptions::default();
        let mut buf = Vec::new();
        encode_options(&opts, &mut buf);
        assert_eq!(decode_options(&mut Reader::new(&buf)).unwrap(), opts);
    }

    #[test]
    fn f64_vectors_survive_bitwise_including_nan() {
        let v = vec![0.0, -0.0, 1.5, f64::NAN, f64::NEG_INFINITY, 1e-308];
        let mut buf = Vec::new();
        encode_f64_vec(&v, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_f64_vec(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), v.len());
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn profiles_round_trip_in_order() {
        let mut t = mpi_sim::SectionTimer::new();
        t.time("alpha", || std::thread::sleep(Duration::from_millis(2)));
        t.time("beta", || ());
        let p = t.finish();
        let back = decode_profile(&encode_profile(&p)).unwrap();
        let names: Vec<_> = back.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert_eq!(back.get("alpha"), p.get("alpha"));
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let mut buf = Vec::new();
        encode_options(&PmaxtOptions::default(), &mut buf);
        for cut in [0, 1, 7, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_options(&mut r).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected by finish().
        buf.push(0);
        let mut r = Reader::new(&buf);
        decode_options(&mut r).unwrap();
        assert!(r.finish().is_err());
    }
}
