//! Explicit SIMD lane kernels (feature `explicit-simd`): the hand-written
//! fallback the ISSUE keeps behind a flag in case autovectorization of the
//! `chunks_exact` kernels in [`super::soa`] regresses.
//!
//! On x86-64 with AVX2 available at runtime these replace the portable loops
//! with 256-bit intrinsics; everywhere else (or when AVX2 is absent) they
//! return `false` and the portable kernels run. Lane accumulators are
//! independent, and the per-element operation sequence (`acc[i] += src[i]`,
//! no FMA contraction) is identical to the portable loops, so enabling the
//! feature cannot change any f64 bit.

#[cfg(target_arch = "x86_64")]
mod x86 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[inline]
    fn avx2() -> bool {
        is_x86_feature_detected!("avx2")
    }

    pub fn add_f64(acc: &mut [f64], src: &[f64]) -> bool {
        if !avx2() {
            return false;
        }
        unsafe { add_f64_avx2(acc, src) }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_f64_avx2(acc: &mut [f64], src: &[f64]) {
        let n = acc.len().min(src.len());
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_loadu_pd(acc.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(a, s));
            i += 4;
        }
        while i < n {
            *acc.get_unchecked_mut(i) += *src.get_unchecked(i);
            i += 1;
        }
    }

    pub fn add_sq_f64(sums: &mut [f64], sqs: &mut [f64], src: &[f64]) -> bool {
        if !avx2() {
            return false;
        }
        unsafe { add_sq_f64_avx2(sums, sqs, src) }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_sq_f64_avx2(sums: &mut [f64], sqs: &mut [f64], src: &[f64]) {
        let n = sums.len().min(sqs.len()).min(src.len());
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(src.as_ptr().add(i));
            let su = _mm256_loadu_pd(sums.as_ptr().add(i));
            let sq = _mm256_loadu_pd(sqs.as_ptr().add(i));
            _mm256_storeu_pd(sums.as_mut_ptr().add(i), _mm256_add_pd(su, v));
            _mm256_storeu_pd(
                sqs.as_mut_ptr().add(i),
                _mm256_add_pd(sq, _mm256_mul_pd(v, v)),
            );
            i += 4;
        }
        while i < n {
            let v = *src.get_unchecked(i);
            *sums.get_unchecked_mut(i) += v;
            *sqs.get_unchecked_mut(i) += v * v;
            i += 1;
        }
    }

    pub fn add_scaled_f64(acc: &mut [f64], src: &[f64], w: f64) -> bool {
        if !avx2() {
            return false;
        }
        unsafe { add_scaled_f64_avx2(acc, src, w) }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_scaled_f64_avx2(acc: &mut [f64], src: &[f64], w: f64) {
        let n = acc.len().min(src.len());
        let wv = _mm256_set1_pd(w);
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_loadu_pd(acc.as_ptr().add(i));
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(
                acc.as_mut_ptr().add(i),
                _mm256_add_pd(a, _mm256_mul_pd(wv, s)),
            );
            i += 4;
        }
        while i < n {
            *acc.get_unchecked_mut(i) += w * *src.get_unchecked(i);
            i += 1;
        }
    }

    pub fn add_f32(acc: &mut [f32], src: &[f32]) -> bool {
        if !avx2() {
            return false;
        }
        unsafe { add_f32_avx2(acc, src) }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_f32_avx2(acc: &mut [f32], src: &[f32]) {
        let n = acc.len().min(src.len());
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_ps(acc.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(a, s));
            i += 8;
        }
        while i < n {
            *acc.get_unchecked_mut(i) += *src.get_unchecked(i);
            i += 1;
        }
    }

    pub fn add_sq_f32(sums: &mut [f32], sqs: &mut [f32], src: &[f32]) -> bool {
        if !avx2() {
            return false;
        }
        unsafe { add_sq_f32_avx2(sums, sqs, src) }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_sq_f32_avx2(sums: &mut [f32], sqs: &mut [f32], src: &[f32]) {
        let n = sums.len().min(sqs.len()).min(src.len());
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let su = _mm256_loadu_ps(sums.as_ptr().add(i));
            let sq = _mm256_loadu_ps(sqs.as_ptr().add(i));
            _mm256_storeu_ps(sums.as_mut_ptr().add(i), _mm256_add_ps(su, v));
            _mm256_storeu_ps(
                sqs.as_mut_ptr().add(i),
                _mm256_add_ps(sq, _mm256_mul_ps(v, v)),
            );
            i += 8;
        }
        while i < n {
            let v = *src.get_unchecked(i);
            *sums.get_unchecked_mut(i) += v;
            *sqs.get_unchecked_mut(i) += v * v;
            i += 1;
        }
    }

    pub fn add_scaled_f32(acc: &mut [f32], src: &[f32], w: f32) -> bool {
        if !avx2() {
            return false;
        }
        unsafe { add_scaled_f32_avx2(acc, src, w) }
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_scaled_f32_avx2(acc: &mut [f32], src: &[f32], w: f32) {
        let n = acc.len().min(src.len());
        let wv = _mm256_set1_ps(w);
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_ps(acc.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(
                acc.as_mut_ptr().add(i),
                _mm256_add_ps(a, _mm256_mul_ps(wv, s)),
            );
            i += 8;
        }
        while i < n {
            *acc.get_unchecked_mut(i) += w * *src.get_unchecked(i);
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{add_f32, add_f64, add_scaled_f32, add_scaled_f64, add_sq_f32, add_sq_f64};

// Non-x86 targets: no explicit kernels; the portable chunks_exact loops run.
#[cfg(not(target_arch = "x86_64"))]
mod portable {
    pub fn add_f64(_: &mut [f64], _: &[f64]) -> bool {
        false
    }
    pub fn add_sq_f64(_: &mut [f64], _: &mut [f64], _: &[f64]) -> bool {
        false
    }
    pub fn add_scaled_f64(_: &mut [f64], _: &[f64], _: f64) -> bool {
        false
    }
    pub fn add_f32(_: &mut [f32], _: &[f32]) -> bool {
        false
    }
    pub fn add_sq_f32(_: &mut [f32], _: &mut [f32], _: &[f32]) -> bool {
        false
    }
    pub fn add_scaled_f32(_: &mut [f32], _: &[f32], _: f32) -> bool {
        false
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) use portable::{
    add_f32, add_f64, add_scaled_f32, add_scaled_f64, add_sq_f32, add_sq_f64,
};

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    #[test]
    fn explicit_kernels_are_bitwise_identical_to_portable_loops() {
        let src: Vec<f64> = (0..19).map(|i| (i as f64) * 0.37 - 2.0).collect();
        let mut a = vec![0.5; 19];
        let mut b = a.clone();
        if add_f64(&mut a, &src) {
            for (i, x) in b.iter_mut().enumerate() {
                *x += src[i];
            }
            for i in 0..19 {
                assert_eq!(a[i].to_bits(), b[i].to_bits());
            }
        }
        let srcf: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let mut sums = vec![0.0f32; 19];
        let mut sqs = vec![0.0f32; 19];
        if add_sq_f32(&mut sums, &mut sqs, &srcf) {
            for i in 0..19 {
                assert_eq!(sums[i].to_bits(), srcf[i].to_bits());
                assert_eq!(sqs[i].to_bits(), (srcf[i] * srcf[i]).to_bits());
            }
        }
        let mut acc = vec![1.0f64; 19];
        if add_scaled_f64(&mut acc, &src, -1.0) {
            for i in 0..19 {
                // The asserted op sequence is exactly the kernel's fmadd-free
                // `acc + scale * x`; spelling it `-src[i]` would assert a
                // different expression tree.
                #[allow(clippy::neg_multiply)]
                let want = 1.0 + -1.0 * src[i];
                assert_eq!(acc[i].to_bits(), want.to_bits());
            }
        }
    }
}
