//! Block F-statistic (`test = "blockf"`): F adjusting for block differences
//! in a randomized complete block design.
//!
//! Columns form `m` consecutive blocks of `k` treatments; within block `b`
//! the label vector says which treatment each column received. With one
//! observation per (block, treatment) cell:
//!
//! ```text
//! SS_treat = m · Σ_t (T̄_t − x̄)²        df = k − 1
//! SS_block = k · Σ_b (B̄_b − x̄)²        df = m − 1
//! SS_err   = SS_total − SS_treat − SS_block,  df = (k−1)(m−1)
//! F = (SS_treat / (k−1)) / (SS_err / ((k−1)(m−1)))
//! ```
//!
//! Missing values: a block containing any missing cell is excluded entirely —
//! the additive decomposition above requires complete blocks. This is the
//! documented NA policy for this method (DESIGN.md).

use super::moments::pivot_of;
use super::soa::Real;

/// Maximum number of treatments kept in the stack-allocated fast path.
const STACK_TREATMENTS: usize = 8;

/// Block F from the (already clamped) treatment/block/total decompositions,
/// mirroring the final combine of [`block_f`] operation for operation. The
/// caller handles the `m < 2` guard.
#[inline]
pub(crate) fn blockf_from_sums<R: Real>(
    k: usize,
    m: usize,
    ss_treat: R,
    ss_block: R,
    ss_total: R,
) -> R {
    let kf = R::from_usize(k);
    let mf = R::from_usize(m);
    let one = R::from_f64(1.0);
    let ss_err = (ss_total - ss_treat - ss_block).max(R::ZERO);
    let df_treat = kf - one;
    let df_err = (kf - one) * (mf - one);
    let ms_err = ss_err / df_err;
    if ms_err <= R::ZERO {
        return R::nan();
    }
    (ss_treat / df_treat) / ms_err
}

/// Block F over consecutive complete blocks of `k` treatments.
pub fn block_f(row: &[f64], labels: &[u8], k: usize) -> f64 {
    debug_assert_eq!(row.len(), labels.len());
    debug_assert_eq!(row.len() % k, 0);
    debug_assert!(k >= 2);
    let blocks = row.len() / k;
    let pivot = pivot_of(row);

    let mut stack = [0.0f64; STACK_TREATMENTS];
    let mut heap;
    let treat_sums: &mut [f64] = if k <= STACK_TREATMENTS {
        &mut stack[..k]
    } else {
        heap = vec![0.0f64; k];
        &mut heap
    };

    let mut m_used = 0usize; // complete blocks
    let mut grand_sum = 0.0;
    let mut grand_sumsq = 0.0;
    let mut block_sum_sq = 0.0; // Σ_b (block sum)²

    for b in 0..blocks {
        let cells = &row[b * k..(b + 1) * k];
        if cells.iter().any(|v| v.is_nan()) {
            continue;
        }
        let lab = &labels[b * k..(b + 1) * k];
        let mut bsum = 0.0;
        for (&v, &t) in cells.iter().zip(lab) {
            let shifted = v - pivot;
            treat_sums[t as usize] += shifted;
            bsum += shifted;
            grand_sum += shifted;
            grand_sumsq += shifted * shifted;
        }
        block_sum_sq += bsum * bsum;
        m_used += 1;
    }

    if m_used < 2 {
        return f64::NAN;
    }
    let m = m_used as f64;
    let kf = k as f64;
    let n = m * kf;
    let correction = grand_sum * grand_sum / n;
    let ss_total = (grand_sumsq - correction).max(0.0);
    // SS_treat = Σ_t (treat sum)²/m − C
    let ss_treat = (treat_sums.iter().map(|s| s * s).sum::<f64>() / m - correction).max(0.0);
    // SS_block = Σ_b (block sum)²/k − C
    let ss_block = (block_sum_sq / kf - correction).max(0.0);
    let ss_err = (ss_total - ss_treat - ss_block).max(0.0);
    let df_treat = kf - 1.0;
    let df_err = (kf - 1.0) * (m - 1.0);
    let ms_err = ss_err / df_err;
    if ms_err <= 0.0 {
        return f64::NAN;
    }
    (ss_treat / df_treat) / ms_err
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn hand_computed_three_blocks_two_treatments() {
        // Blocks (t0,t1): (1,2), (2,4), (3,6).
        // SS_treat = 6, SS_block = 9, SS_total = 16, SS_err = 1,
        // F = (6/1)/(1/2) = 12.
        let row = [1.0, 2.0, 2.0, 4.0, 3.0, 6.0];
        let labels = [0, 1, 0, 1, 0, 1];
        assert!((block_f(&row, &labels, 2) - 12.0).abs() < TOL);
    }

    #[test]
    fn within_block_label_order_is_respected() {
        // Same data, but block 2 lists treatment 1 first.
        let row = [1.0, 2.0, 4.0, 2.0, 3.0, 6.0];
        let labels = [0, 1, 1, 0, 0, 1];
        // Equivalent to the hand-computed case above.
        assert!((block_f(&row, &labels, 2) - 12.0).abs() < TOL);
    }

    #[test]
    fn block_with_na_is_excluded() {
        let row = [1.0, 2.0, f64::NAN, 4.0, 2.0, 4.0, 3.0, 6.0];
        let labels = [0, 1, 0, 1, 0, 1, 0, 1];
        let clean = block_f(&[1.0, 2.0, 2.0, 4.0, 3.0, 6.0], &[0, 1, 0, 1, 0, 1], 2);
        assert!((block_f(&row, &labels, 2) - clean).abs() < TOL);
    }

    #[test]
    fn fewer_than_two_complete_blocks_gives_nan() {
        let row = [1.0, 2.0, f64::NAN, 4.0];
        let labels = [0, 1, 0, 1];
        assert!(block_f(&row, &labels, 2).is_nan());
    }

    #[test]
    fn no_error_variance_gives_nan() {
        // Perfectly additive data: err SS = 0.
        let row = [1.0, 2.0, 11.0, 12.0];
        let labels = [0, 1, 0, 1];
        assert!(block_f(&row, &labels, 2).is_nan());
    }

    #[test]
    fn block_adjustment_removes_block_effects() {
        // Adding a large constant to one whole block must not change F.
        let row = [1.0, 2.3, 2.0, 4.1, 3.0, 6.2];
        let labels = [0, 1, 0, 1, 0, 1];
        let f0 = block_f(&row, &labels, 2);
        let mut shifted = row;
        shifted[2] += 100.0;
        shifted[3] += 100.0;
        let f1 = block_f(&shifted, &labels, 2);
        assert!((f0 - f1).abs() < 1e-6, "f0={f0} f1={f1}");
    }

    #[test]
    fn three_treatments() {
        // Blocks of 3 treatments; verified against the one-way identity when
        // block effects are absent, F_block ≥ 0.
        let row = [1.0, 2.0, 4.0, 1.2, 2.1, 3.8, 0.9, 2.2, 4.1];
        let labels = [0, 1, 2, 0, 1, 2, 0, 1, 2];
        let f = block_f(&row, &labels, 3);
        assert!(f.is_finite() && f > 0.0);
    }

    #[test]
    fn many_treatments_heap_path() {
        let k = 10;
        let mut row = Vec::new();
        let mut labels = Vec::new();
        for b in 0..3 {
            for t in 0..k as u8 {
                row.push((t as f64) * 1.1 + b as f64 * 0.3 + ((b + t as usize) % 3) as f64 * 0.01);
                labels.push(t);
            }
        }
        let f = block_f(&row, &labels, k);
        assert!(f.is_finite() && f > 0.0);
    }
}
