//! The unified scoring plane: one `Scorer` trait behind which every
//! execution layer (serial reference, batched engine, minP, pmaxt ranks,
//! jobd spans, bench backends) evaluates test statistics.
//!
//! A scorer has a two-phase contract:
//!
//! 1. **prepare** (the constructor): cache per-gene sufficient statistics
//!    once — S = Σ(x−pivot), Q = Σ(x−pivot)², per-class/per-block partial
//!    sums, per-row non-missing counts — everything that does not change
//!    across permutations.
//! 2. **score** ([`Scorer::begin_batch`] + [`Scorer::score_tile`]): for a
//!    K-permutation batch, derive the per-arrangement structures (group-1
//!    column lists, class-major column lists, pair signs) once in
//!    `begin_batch`, then score gene tiles gene-major so each cached row
//!    stays hot in L1 across the whole batch.
//!
//! All six `mt.maxT` statistics have fast implementations here:
//!
//! - `t` / `t.equalvar`: group-1 gather s₁, q₁; group 0 recovered as S−s₁,
//!   Q−q₁; statistic in O(1) from the four moments.
//! - `wilcoxon`: rows are midranks, so the group-1 gather *is* the rank sum.
//! - `f`: per-class gathers (n_c, s_c, q_c) give SS_between via
//!   Σ n_c·(s_c/n_c − x̄)² and SS_within via Σ (q_c − s_c²/n_c) — the exact
//!   scalar decomposition, never the cancellation-prone SS_total − SS_between.
//! - `pairt`: per-pair base differences d⁰_p = x_{2p+1} − x_{2p} and
//!   Σ(d⁰)² are permutation-invariant; an arrangement only flips signs, so
//!   the sum of differences is Σ ±d⁰_p and the variance follows from the
//!   cached square sum.
//! - `blockf`: block sums, the grand sum/square sum, the correction term and
//!   SS_block are permutation-invariant (complete-block exclusion depends
//!   only on the data); a permutation only reshuffles which treatment each
//!   cell feeds, so scoring is one add per cell into k treatment sums.
//!
//! ## Missing values
//!
//! NA rows stay on the fast path. The caches keep `NaN` cells in place and
//! remember each row's non-missing count; dirty rows take a gather variant
//! that skips `NaN` cells and adjusts the group counts per permutation
//! (n₀ = n_row − n₁ for the two-sample family, per-class counts for F,
//! complete-pair/complete-block exclusion for the paired designs — the
//! latter two are permutation-invariant, so their corrections are cached).
//! Degenerate arrangements (empty class, too few complete pairs/blocks,
//! zero variance) hit the same guards as the scalar functions and yield
//! `NaN`.
//!
//! ## Numerical-equivalence policy
//!
//! The fast path is constructed so that exceedance *counts* (the integers
//! the p-values are made of) match the reference scalar scorer:
//!
//! - every gather walks columns in ascending order — the exact order the
//!   scalar statistic pushes values into its accumulators — so the gathered
//!   sums are **bitwise identical** to the scalar ones, and Wilcoxon,
//!   paired t and block F are bitwise identical end to end;
//! - only the two-sample subtraction S−s₁ / Q−q₁ re-associates a sum, an
//!   error of a few ulps; the combining formulas mirror the scalar
//!   operation sequence (same literals, clamps and guards) so the final
//!   statistic differs by ulps at most;
//! - the maxT count comparisons carry an absolute slack of
//!   [`crate::maxt::EPSILON`] = 1e-10, orders of magnitude above ulp noise,
//!   so the counts agree;
//! - observed statistics are computed through the *same* scorer as the
//!   permuted ones, so the identity permutation compares a value against
//!   itself and always counts, whichever scorer is active.

use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::options::{KernelChoice, TestMethod};
use crate::stats::moments::pivot_of;
use crate::stats::StatComputer;

/// Reusable per-thread scratch owned by the caller and shaped by the scorer:
/// permutation-derived index lists, pair signs and treatment-sum temporaries
/// live here so the batch loop performs no allocation.
#[derive(Debug, Default, Clone)]
pub struct ScorerScratch {
    /// Flattened per-arrangement column-index lists (group-1 lists for the
    /// two-sample family, class-major lists for F).
    idx: Vec<usize>,
    /// Boundaries into `idx`: `arrangements + 1` entries for the two-sample
    /// family, `arrangements·k + 1` class-major entries for F.
    offsets: Vec<usize>,
    /// Per-arrangement pair signs (±1.0) for paired t, `vals[j·pairs + p]`.
    vals: Vec<f64>,
    /// Treatment-sum temporary for block F (≥ k slots).
    tmp: Vec<f64>,
}

/// A prepared statistic evaluator: sufficient statistics cached at
/// construction, per-batch scoring through [`Scorer::begin_batch`] +
/// [`Scorer::score_tile`], one-shot scoring through [`Scorer::stats_into`].
pub trait Scorer: std::fmt::Debug + Send + Sync {
    /// Which implementation is active: `"scalar"` for the reference
    /// per-column path, otherwise the statistic's fast path name.
    fn path(&self) -> &'static str;

    /// Allocate scratch for this scorer (callers keep one per thread).
    fn make_scratch(&self) -> ScorerScratch {
        ScorerScratch::default()
    }

    /// Derive the per-arrangement structures for a batch of label buffers.
    /// Must be called before [`Scorer::score_tile`] whenever the batch
    /// changes; the derivations live in `scratch`.
    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch);

    /// Score the genes in `genes` for **every** arrangement of the current
    /// batch, writing raw statistics gene-major into `out[g·stride + j]`
    /// for arrangement `j`. Per (gene, arrangement) the operation sequence
    /// is batch-size-invariant, so results are bitwise identical across any
    /// batch/tile geometry.
    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    );

    /// Score every gene under a single label arrangement into `out`
    /// (indexed by gene). Convenience for the non-batched paths (observed
    /// statistics, the serial reference loop, sequential estimation).
    fn stats_into(&self, labels: &[u8], scratch: &mut ScorerScratch, out: &mut [f64]) {
        let bufs = [labels.to_vec()];
        self.begin_batch(&bufs, scratch);
        let genes = out.len();
        self.score_tile(&bufs, 0..genes, scratch, out, 1);
    }
}

/// Build the scorer for a run: the method's fast sufficient-statistic
/// implementation under `Auto`/`Fast`, the reference scalar scorer under
/// `Scalar` (the `SPRINT_KERNEL` debug override is applied first). Emits a
/// once-per-process stderr note naming the chosen path per method, so a
/// forced scalar run is never silent.
pub fn build_scorer<'a>(
    data: &'a Matrix,
    labels: &ClassLabels,
    method: TestMethod,
    choice: KernelChoice,
) -> Box<dyn Scorer + 'a> {
    let computer = StatComputer::new(method, labels);
    let scorer: Box<dyn Scorer + 'a> = match choice.env_override() {
        KernelChoice::Scalar => Box::new(ScalarScorer { data, computer }),
        KernelChoice::Auto | KernelChoice::Fast => match method {
            TestMethod::T => Box::new(TwoSampleScorer::new(data, true)),
            TestMethod::TEqualVar => Box::new(TwoSampleScorer::new(data, false)),
            TestMethod::Wilcoxon => Box::new(WilcoxonScorer::new(data)),
            TestMethod::F => Box::new(FScorer::new(data, computer.classes())),
            TestMethod::PairT => Box::new(PairTScorer::new(data)),
            TestMethod::BlockF => Box::new(BlockFScorer::new(data, computer.classes())),
        },
    };
    note_scorer_path(method, scorer.path());
    scorer
}

/// Note (once per method/path pair per process) which scorer a run uses.
/// Mirrors the once-per-var `SPRINT_*` env warnings: a debug override or an
/// unexpected path is visible on stderr instead of silently changing the
/// performance profile.
fn note_scorer_path(method: TestMethod, path: &'static str) {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static NOTED: OnceLock<Mutex<HashSet<(&'static str, &'static str)>>> = OnceLock::new();
    let noted = NOTED.get_or_init(|| Mutex::new(HashSet::new()));
    if noted.lock().unwrap().insert((method.as_str(), path)) {
        eprintln!(
            "note: scoring test \"{}\" via the {} scorer",
            method.as_str(),
            path
        );
    }
}

/// Collect the group-1 column lists of each arrangement into
/// `scratch.idx`/`scratch.offsets`, ascending — the once-per-batch O(n)
/// step shared by the two-sample family.
fn group1_lists(labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
    scratch.idx.clear();
    scratch.offsets.clear();
    scratch.offsets.push(0);
    for labels in labels_bufs {
        for (j, &l) in labels.iter().enumerate() {
            if l == 1 {
                scratch.idx.push(j);
            }
        }
        scratch.offsets.push(scratch.idx.len());
    }
}

/// The reference scalar scorer: one full O(n) per-column sweep per (gene,
/// arrangement) through [`StatComputer::compute`]. Always correct, never
/// fast — kept as the equivalence oracle behind `SPRINT_KERNEL=scalar`.
#[derive(Debug)]
pub struct ScalarScorer<'a> {
    data: &'a Matrix,
    computer: StatComputer,
}

impl<'a> ScalarScorer<'a> {
    /// Wrap a prepared matrix and its per-run dispatcher.
    pub fn new(data: &'a Matrix, computer: StatComputer) -> Self {
        ScalarScorer { data, computer }
    }
}

impl Scorer for ScalarScorer<'_> {
    fn path(&self) -> &'static str {
        "scalar"
    }

    fn begin_batch(&self, _labels_bufs: &[Vec<u8>], _scratch: &mut ScorerScratch) {}

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        _scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        for g in genes {
            let row = self.data.row(g);
            let slots = &mut out[g * stride..g * stride + labels_bufs.len()];
            for (slot, labels) in slots.iter_mut().zip(labels_bufs) {
                *slot = self.computer.compute(row, labels);
            }
        }
    }

    fn stats_into(&self, labels: &[u8], _scratch: &mut ScorerScratch, out: &mut [f64]) {
        for (g, slot) in out.iter_mut().enumerate() {
            *slot = self.computer.compute(self.data.row(g), labels);
        }
    }
}

/// Fast scorer for `t` (Welch) and `t.equalvar`: cached pivot-shifted rows
/// with per-row totals S, Q; each arrangement needs only the group-1 gather.
#[derive(Debug)]
pub struct TwoSampleScorer {
    welch: bool,
    cols: usize,
    /// Pivot-shifted row values, row-major; `NaN` cells preserved.
    values: Vec<f64>,
    /// Per row: S = Σ shifted non-missing values (ascending column order).
    total_sum: Vec<f64>,
    /// Per row: Q = Σ shifted² non-missing values.
    total_sumsq: Vec<f64>,
    /// Per row: non-missing cell count.
    row_n: Vec<usize>,
    /// Per row: no missing cells (enables the check-free gather).
    clean: Vec<bool>,
}

impl TwoSampleScorer {
    /// Cache sufficient statistics for a prepared matrix.
    pub fn new(data: &Matrix, welch: bool) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut values = Vec::with_capacity(rows * cols);
        let mut total_sum = Vec::with_capacity(rows);
        let mut total_sumsq = Vec::with_capacity(rows);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let pivot = pivot_of(row);
            let mut s = 0.0;
            let mut q = 0.0;
            let mut n = 0usize;
            for &v in row {
                if v.is_nan() {
                    values.push(f64::NAN);
                } else {
                    let x = v - pivot;
                    values.push(x);
                    s += x;
                    q += x * x;
                    n += 1;
                }
            }
            total_sum.push(s);
            total_sumsq.push(q);
            row_n.push(n);
            clean.push(n == cols);
        }
        TwoSampleScorer {
            welch,
            cols,
            values,
            total_sum,
            total_sumsq,
            row_n,
            clean,
        }
    }
}

impl Scorer for TwoSampleScorer {
    fn path(&self) -> &'static str {
        "two-sample"
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        group1_lists(labels_bufs, scratch);
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let cols = self.cols;
        for g in genes {
            let row = &self.values[g * cols..(g + 1) * cols];
            let s = self.total_sum[g];
            let q = self.total_sumsq[g];
            let clean = self.clean[g];
            let slots = &mut out[g * stride..g * stride + labels_bufs.len()];
            for (j, slot) in slots.iter_mut().enumerate() {
                let idx = &scratch.idx[scratch.offsets[j]..scratch.offsets[j + 1]];
                let (n1, n0, s1, q1) = if clean {
                    let n1 = idx.len();
                    let mut s1 = 0.0;
                    let mut q1 = 0.0;
                    for &jc in idx {
                        let v = row[jc];
                        s1 += v;
                        q1 += v * v;
                    }
                    (n1, cols - n1, s1, q1)
                } else {
                    let mut n1 = 0usize;
                    let mut s1 = 0.0;
                    let mut q1 = 0.0;
                    for &jc in idx {
                        let v = row[jc];
                        if !v.is_nan() {
                            n1 += 1;
                            s1 += v;
                            q1 += v * v;
                        }
                    }
                    (n1, self.row_n[g] - n1, s1, q1)
                };
                // Mirrors the scalar guard `g0.n < 2 || g1.n < 2` on the
                // post-NA-exclusion counts.
                if n0 < 2 || n1 < 2 {
                    *slot = f64::NAN;
                    continue;
                }
                let s0 = s - s1;
                let q0 = q - q1;
                *slot = if self.welch {
                    welch_from_moments(n0 as f64, s0, q0, n1 as f64, s1, q1)
                } else {
                    equalvar_from_moments(n0 as f64, s0, q0, n1 as f64, s1, q1)
                };
            }
        }
    }
}

/// Fast scorer for `wilcoxon`: rows are cached midranks, the group-1 gather
/// is the rank sum W, and the statistic is a pure function of W and the
/// group sizes — bitwise identical to the scalar path end to end.
#[derive(Debug)]
pub struct WilcoxonScorer {
    cols: usize,
    /// Midrank rows, row-major; `NaN` cells preserved.
    values: Vec<f64>,
    /// Per row: non-missing cell count.
    row_n: Vec<usize>,
    /// Per row: no missing cells.
    clean: Vec<bool>,
}

impl WilcoxonScorer {
    /// Cache the (already rank-transformed) rows.
    pub fn new(data: &Matrix) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut values = Vec::with_capacity(rows * cols);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let n = row.iter().filter(|v| !v.is_nan()).count();
            values.extend_from_slice(row);
            row_n.push(n);
            clean.push(n == cols);
        }
        WilcoxonScorer {
            cols,
            values,
            row_n,
            clean,
        }
    }
}

impl Scorer for WilcoxonScorer {
    fn path(&self) -> &'static str {
        "wilcoxon"
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        group1_lists(labels_bufs, scratch);
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let cols = self.cols;
        for g in genes {
            let row = &self.values[g * cols..(g + 1) * cols];
            let clean = self.clean[g];
            let slots = &mut out[g * stride..g * stride + labels_bufs.len()];
            for (j, slot) in slots.iter_mut().enumerate() {
                let idx = &scratch.idx[scratch.offsets[j]..scratch.offsets[j + 1]];
                let (n1, n0, w) = if clean {
                    let mut w = 0.0;
                    for &jc in idx {
                        w += row[jc];
                    }
                    (idx.len(), cols - idx.len(), w)
                } else {
                    let mut n1 = 0usize;
                    let mut w = 0.0;
                    for &jc in idx {
                        let v = row[jc];
                        if !v.is_nan() {
                            n1 += 1;
                            w += v;
                        }
                    }
                    (n1, self.row_n[g] - n1, w)
                };
                if n0 == 0 || n1 == 0 {
                    *slot = f64::NAN;
                    continue;
                }
                let n = (n0 + n1) as f64;
                let expect = n1 as f64 * (n + 1.0) / 2.0;
                let var = n0 as f64 * n1 as f64 * (n + 1.0) / 12.0;
                if var <= 0.0 {
                    *slot = f64::NAN;
                    continue;
                }
                *slot = (w - expect) / var.sqrt();
            }
        }
    }
}

/// Fast scorer for the one-way `f` statistic over k classes: per-class
/// gathers (n_c, s_c, q_c) from cached pivot-shifted rows reproduce the
/// scalar between/within decomposition bitwise.
#[derive(Debug)]
pub struct FScorer {
    k: usize,
    cols: usize,
    /// Pivot-shifted rows, row-major; `NaN` cells preserved.
    values: Vec<f64>,
    /// Per row: Σ shifted non-missing values (= the scalar grand total).
    total_sum: Vec<f64>,
    /// Per row: non-missing cell count.
    row_n: Vec<usize>,
    /// Per row: no missing cells.
    clean: Vec<bool>,
}

impl FScorer {
    /// Cache sufficient statistics; `k` is the class count of the design.
    pub fn new(data: &Matrix, k: usize) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut values = Vec::with_capacity(rows * cols);
        let mut total_sum = Vec::with_capacity(rows);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let pivot = pivot_of(row);
            let mut s = 0.0;
            let mut n = 0usize;
            for &v in row {
                if v.is_nan() {
                    values.push(f64::NAN);
                } else {
                    let x = v - pivot;
                    values.push(x);
                    s += x;
                    n += 1;
                }
            }
            total_sum.push(s);
            row_n.push(n);
            clean.push(n == cols);
        }
        FScorer {
            k,
            cols,
            values,
            total_sum,
            row_n,
            clean,
        }
    }
}

impl Scorer for FScorer {
    fn path(&self) -> &'static str {
        "f"
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        // Class-major column lists: for arrangement j and class c the list is
        // `idx[offsets[j·k + c]..offsets[j·k + c + 1]]`, ascending — the
        // order the scalar path pushes class-c values.
        scratch.idx.clear();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        for labels in labels_bufs {
            for c in 0..self.k {
                for (j, &l) in labels.iter().enumerate() {
                    if l as usize == c {
                        scratch.idx.push(j);
                    }
                }
                scratch.offsets.push(scratch.idx.len());
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let cols = self.cols;
        let k = self.k;
        for g in genes {
            let row = &self.values[g * cols..(g + 1) * cols];
            let n = self.row_n[g];
            let clean = self.clean[g];
            let slots = &mut out[g * stride..g * stride + labels_bufs.len()];
            for (j, slot) in slots.iter_mut().enumerate() {
                // Mirrors the scalar `n <= k` degrees-of-freedom guard; the
                // non-missing count is permutation-invariant.
                if n <= k {
                    *slot = f64::NAN;
                    continue;
                }
                let grand_mean = self.total_sum[g] / n as f64;
                let mut ss_between = 0.0;
                let mut ss_within = 0.0;
                let mut empty_class = false;
                for c in 0..k {
                    let cls =
                        &scratch.idx[scratch.offsets[j * k + c]..scratch.offsets[j * k + c + 1]];
                    let (nc, sc, qc) = if clean {
                        let mut sc = 0.0;
                        let mut qc = 0.0;
                        for &jc in cls {
                            let v = row[jc];
                            sc += v;
                            qc += v * v;
                        }
                        (cls.len(), sc, qc)
                    } else {
                        let mut nc = 0usize;
                        let mut sc = 0.0;
                        let mut qc = 0.0;
                        for &jc in cls {
                            let v = row[jc];
                            if !v.is_nan() {
                                nc += 1;
                                sc += v;
                                qc += v * v;
                            }
                        }
                        (nc, sc, qc)
                    };
                    if nc == 0 {
                        empty_class = true;
                        break;
                    }
                    let ncf = nc as f64;
                    // Scalar sequence: d = mean − grand_mean, SSB += n·d²,
                    // SSW += (q − s²/n).max(0).
                    let d = sc / ncf - grand_mean;
                    ss_between += ncf * d * d;
                    ss_within += (qc - sc * sc / ncf).max(0.0);
                }
                if empty_class {
                    *slot = f64::NAN;
                    continue;
                }
                let df_between = (k - 1) as f64;
                let df_within = (n - k) as f64;
                let ms_within = ss_within / df_within;
                *slot = if ms_within <= 0.0 {
                    f64::NAN
                } else {
                    (ss_between / df_between) / ms_within
                };
            }
        }
    }
}

/// Fast scorer for `pairt`: per-pair base differences d⁰ = x₂ₚ₊₁ − x₂ₚ and
/// their square sum are cached; an arrangement only flips signs, so each
/// (gene, arrangement) is one ±-signed sum over the complete pairs.
#[derive(Debug)]
pub struct PairTScorer {
    pairs: usize,
    /// Base differences, row-major (`pairs` per gene); `NaN` marks an
    /// incomplete pair (excluded whatever the arrangement).
    diffs: Vec<f64>,
    /// Per row: Σ d⁰² over complete pairs (sign-invariant, so equal to the
    /// scalar accumulator's square sum bitwise).
    sumsq: Vec<f64>,
    /// Per row: complete-pair count (permutation-invariant).
    n: Vec<usize>,
    /// Per row: every pair complete.
    clean: Vec<bool>,
}

impl PairTScorer {
    /// Cache pair differences for a prepared matrix.
    pub fn new(data: &Matrix) -> Self {
        let pairs = data.cols() / 2;
        let rows = data.rows();
        let mut diffs = Vec::with_capacity(rows * pairs);
        let mut sumsq = Vec::with_capacity(rows);
        let mut n_vec = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let mut q = 0.0;
            let mut n = 0usize;
            for p in 0..pairs {
                let a = row[2 * p];
                let b = row[2 * p + 1];
                if a.is_nan() || b.is_nan() {
                    diffs.push(f64::NAN);
                } else {
                    let d = b - a;
                    diffs.push(d);
                    q += d * d;
                    n += 1;
                }
            }
            sumsq.push(q);
            n_vec.push(n);
            clean.push(n == pairs);
        }
        PairTScorer {
            pairs,
            diffs,
            sumsq,
            n: n_vec,
            clean,
        }
    }
}

impl Scorer for PairTScorer {
    fn path(&self) -> &'static str {
        "pairt"
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        // Pair signs: labels[2p] == 0 means the second member carries label 1
        // and the scalar difference is d⁰ = b − a (sign +1); otherwise −1.
        scratch.vals.clear();
        scratch.vals.reserve(labels_bufs.len() * self.pairs);
        for labels in labels_bufs {
            for p in 0..self.pairs {
                scratch
                    .vals
                    .push(if labels[2 * p] == 0 { 1.0 } else { -1.0 });
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let pairs = self.pairs;
        for g in genes {
            let drow = &self.diffs[g * pairs..(g + 1) * pairs];
            let n = self.n[g];
            let clean = self.clean[g];
            let slots = &mut out[g * stride..g * stride + labels_bufs.len()];
            for (j, slot) in slots.iter_mut().enumerate() {
                if n < 2 {
                    *slot = f64::NAN;
                    continue;
                }
                let signs = &scratch.vals[j * pairs..(j + 1) * pairs];
                // ±1·d⁰ is bitwise the scalar's per-pair difference, and the
                // pair-order sum matches the scalar accumulator exactly.
                let mut s = 0.0;
                if clean {
                    for p in 0..pairs {
                        s += signs[p] * drow[p];
                    }
                } else {
                    for p in 0..pairs {
                        let d = drow[p];
                        if !d.is_nan() {
                            s += signs[p] * d;
                        }
                    }
                }
                let nf = n as f64;
                let var = ((self.sumsq[g] - s * s / nf) / (nf - 1.0)).max(0.0);
                *slot = if var <= 0.0 {
                    f64::NAN
                } else {
                    (s / nf) / (var / nf).sqrt()
                };
            }
        }
    }
}

/// Fast scorer for `blockf`: block sums, the grand totals, the correction
/// term, SS_total and SS_block depend only on the data (complete-block
/// exclusion is label-free), so they are cached; scoring an arrangement is
/// one add per cell into k treatment sums plus an O(k) combine.
#[derive(Debug)]
pub struct BlockFScorer {
    k: usize,
    cols: usize,
    /// Pivot-shifted rows, row-major; `NaN` cells preserved (never read:
    /// incomplete blocks are excluded below).
    values: Vec<f64>,
    /// Flattened complete-block indices per gene.
    complete: Vec<usize>,
    /// Boundaries into `complete` (`rows + 1` entries).
    complete_off: Vec<usize>,
    /// Per row: complete-block count m.
    m_used: Vec<usize>,
    /// Per row: C = (grand sum)²/(m·k). Garbage when `m_used == 0` — the
    /// `m_used < 2` guard keeps it unread.
    correction: Vec<f64>,
    /// Per row: SS_total = (grand Σx² − C).max(0).
    ss_total: Vec<f64>,
    /// Per row: SS_block = (Σ_b (block sum)²/k − C).max(0).
    ss_block: Vec<f64>,
}

impl BlockFScorer {
    /// Cache block partials; `k` is the treatment count of the design.
    pub fn new(data: &Matrix, k: usize) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let blocks = cols / k;
        let mut values = Vec::with_capacity(rows * cols);
        let mut complete = Vec::new();
        let mut complete_off = Vec::with_capacity(rows + 1);
        complete_off.push(0);
        let mut m_used = Vec::with_capacity(rows);
        let mut correction = Vec::with_capacity(rows);
        let mut ss_total = Vec::with_capacity(rows);
        let mut ss_block = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let pivot = pivot_of(row);
            for &v in row {
                values.push(if v.is_nan() { f64::NAN } else { v - pivot });
            }
            let shifted = &values[g * cols..(g + 1) * cols];
            let mut m = 0usize;
            let mut grand_sum = 0.0;
            let mut grand_sumsq = 0.0;
            let mut block_sum_sq = 0.0;
            for b in 0..blocks {
                let cells = &row[b * k..(b + 1) * k];
                if cells.iter().any(|v| v.is_nan()) {
                    continue;
                }
                complete.push(b);
                let mut bsum = 0.0;
                // The scalar path accumulates per cell in block order; the
                // shifted values here are the same fl(v − pivot) bits.
                for &x in &shifted[b * k..(b + 1) * k] {
                    bsum += x;
                    grand_sum += x;
                    grand_sumsq += x * x;
                }
                block_sum_sq += bsum * bsum;
                m += 1;
            }
            complete_off.push(complete.len());
            m_used.push(m);
            let mf = m as f64;
            let kf = k as f64;
            let n = mf * kf;
            let c = grand_sum * grand_sum / n;
            correction.push(c);
            ss_total.push((grand_sumsq - c).max(0.0));
            ss_block.push((block_sum_sq / kf - c).max(0.0));
        }
        BlockFScorer {
            k,
            cols,
            values,
            complete,
            complete_off,
            m_used,
            correction,
            ss_total,
            ss_block,
        }
    }
}

impl Scorer for BlockFScorer {
    fn path(&self) -> &'static str {
        "blockf"
    }

    fn begin_batch(&self, _labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        if scratch.tmp.len() < self.k {
            scratch.tmp.resize(self.k, 0.0);
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let cols = self.cols;
        let k = self.k;
        let kf = k as f64;
        let treat_sums = &mut scratch.tmp[..k];
        for g in genes {
            let m_used = self.m_used[g];
            let slots_len = labels_bufs.len();
            if m_used < 2 {
                for slot in &mut out[g * stride..g * stride + slots_len] {
                    *slot = f64::NAN;
                }
                continue;
            }
            let row = &self.values[g * cols..(g + 1) * cols];
            let blocks = &self.complete[self.complete_off[g]..self.complete_off[g + 1]];
            let m = m_used as f64;
            for (j, labels) in labels_bufs.iter().enumerate() {
                treat_sums.fill(0.0);
                // One add per cell, in the scalar's exact block-by-block cell
                // order; each treatment accumulator sees the same sequence.
                for &b in blocks {
                    for col in b * k..(b + 1) * k {
                        treat_sums[labels[col] as usize] += row[col];
                    }
                }
                let ss_treat = (treat_sums.iter().map(|s| s * s).sum::<f64>() / m
                    - self.correction[g])
                    .max(0.0);
                let ss_err = (self.ss_total[g] - ss_treat - self.ss_block[g]).max(0.0);
                let df_treat = kf - 1.0;
                let df_err = (kf - 1.0) * (m - 1.0);
                let ms_err = ss_err / df_err;
                out[g * stride + j] = if ms_err <= 0.0 {
                    f64::NAN
                } else {
                    (ss_treat / df_treat) / ms_err
                };
            }
        }
    }
}

/// Welch t from group moments, mirroring `two_sample::welch_t` +
/// `GroupSums::variance` operation for operation (same clamps and guards).
#[inline]
fn welch_from_moments(n0: f64, s0: f64, q0: f64, n1: f64, s1: f64, q1: f64) -> f64 {
    let v1 = ((q1 - s1 * s1 / n1) / (n1 - 1.0)).max(0.0);
    let v0 = ((q0 - s0 * s0 / n0) / (n0 - 1.0)).max(0.0);
    let se2 = v1 / n1 + v0 / n0;
    if se2 <= 0.0 {
        return f64::NAN;
    }
    (s1 / n1 - s0 / n0) / se2.sqrt()
}

/// Pooled-variance t from group moments, mirroring `two_sample::equalvar_t`
/// + `GroupSums::ss` operation for operation.
#[inline]
fn equalvar_from_moments(n0: f64, s0: f64, q0: f64, n1: f64, s1: f64, q1: f64) -> f64 {
    let ss0 = (q0 - s0 * s0 / n0).max(0.0);
    let ss1 = (q1 - s1 * s1 / n1).max(0.0);
    let pooled = (ss0 + ss1) / (n0 + n1 - 2.0);
    let se2 = pooled * (1.0 / n0 + 1.0 / n1);
    if se2 <= 0.0 {
        return f64::NAN;
    }
    (s1 / n1 - s0 / n0) / se2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ranks::midranks;
    use crate::stats::two_sample::{equalvar_t, welch_t};
    use crate::stats::wilcoxon::wilcoxon_from_ranks;

    fn labels_of(method: TestMethod, raw: Vec<u8>) -> ClassLabels {
        ClassLabels::new(raw, method).unwrap()
    }

    fn stats_for(scorer: &dyn Scorer, labels: &[u8], genes: usize) -> Vec<f64> {
        let mut scratch = scorer.make_scratch();
        let mut out = vec![f64::NAN; genes];
        scorer.stats_into(labels, &mut scratch, &mut out);
        out
    }

    fn assert_same_stat(fast: f64, scalar: f64, what: &str) {
        if scalar.is_nan() {
            assert!(fast.is_nan(), "{what}: fast {fast} vs scalar NaN");
        } else {
            assert!(
                (fast - scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
                "{what}: fast {fast} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn builder_selects_fast_path_per_method_and_scalar_override() {
        let m = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 7.0]).unwrap();
        let cases = [
            (TestMethod::T, vec![0u8, 0, 0, 1, 1, 1], "two-sample"),
            (TestMethod::TEqualVar, vec![0, 0, 0, 1, 1, 1], "two-sample"),
            (TestMethod::Wilcoxon, vec![0, 0, 0, 1, 1, 1], "wilcoxon"),
            (TestMethod::F, vec![0, 0, 1, 1, 2, 2], "f"),
            (TestMethod::PairT, vec![0, 1, 0, 1, 0, 1], "pairt"),
            (TestMethod::BlockF, vec![0, 1, 0, 1, 0, 1], "blockf"),
        ];
        for (method, raw, path) in cases {
            let labels = labels_of(method, raw);
            let fast = build_scorer(&m, &labels, method, KernelChoice::Auto);
            assert_eq!(fast.path(), path, "{method:?}");
            let scalar = build_scorer(&m, &labels, method, KernelChoice::Scalar);
            assert_eq!(scalar.path(), "scalar", "{method:?}");
        }
    }

    #[test]
    fn welch_and_equalvar_match_scalar() {
        let row = vec![3.5, -1.25, 7.0, 0.5, 2.25, -4.0, 9.5, 1.0];
        let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
        for welch in [true, false] {
            let scorer = TwoSampleScorer::new(&m, welch);
            for labels in [
                [0u8, 0, 0, 0, 1, 1, 1, 1],
                [1, 0, 1, 0, 1, 0, 1, 0],
                [1, 1, 0, 0, 0, 0, 1, 1],
            ] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = if welch {
                    welch_t(&row, &labels)
                } else {
                    equalvar_t(&row, &labels)
                };
                assert_same_stat(fast, scalar, "two-sample");
            }
        }
    }

    #[test]
    fn na_rows_stay_on_the_fast_path_with_adjusted_counts() {
        let row = vec![3.5, f64::NAN, 7.0, 0.5, f64::NAN, -4.0, 9.5, 1.0];
        let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
        for welch in [true, false] {
            let scorer = TwoSampleScorer::new(&m, welch);
            for labels in [
                [0u8, 0, 0, 0, 1, 1, 1, 1],
                [1, 0, 1, 0, 1, 0, 1, 0],
                [1, 1, 1, 0, 0, 0, 0, 1],
            ] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = if welch {
                    welch_t(&row, &labels)
                } else {
                    equalvar_t(&row, &labels)
                };
                assert_same_stat(fast, scalar, "two-sample NA");
            }
        }
    }

    #[test]
    fn wilcoxon_is_bitwise_identical_to_scalar() {
        let data = [0.3, 2.0, -1.0, 7.0, 0.5, 4.0, 2.0, -3.5];
        let mut ranks = midranks(&data);
        ranks[3] = f64::NAN; // a missing cell after ranking exercises the dirty gather
        let m = Matrix::from_vec(1, 8, ranks.clone()).unwrap();
        let scorer = WilcoxonScorer::new(&m);
        for labels in [
            [0u8, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [0, 1, 1, 1, 1, 1, 1, 1],
        ] {
            let fast = stats_for(&scorer, &labels, 1)[0];
            let scalar = wilcoxon_from_ranks(&ranks, &labels);
            assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
        }
    }

    #[test]
    fn f_matches_scalar_bitwise_with_and_without_na() {
        use crate::stats::f_stat::oneway_f;
        let rows = [
            vec![1.0, 2.0, 4.0, 6.0, 5.0, 9.0],
            vec![1.0, f64::NAN, 4.0, 6.0, 5.0, 9.0],
            vec![7.0; 6],
        ];
        for row in &rows {
            let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
            let scorer = FScorer::new(&m, 3);
            for labels in [[0u8, 0, 1, 1, 2, 2], [2, 1, 0, 2, 1, 0], [0, 1, 2, 0, 1, 2]] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = oneway_f(row, &labels, 3);
                if scalar.is_nan() {
                    assert!(fast.is_nan());
                } else {
                    assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
                }
            }
        }
    }

    #[test]
    fn pairt_matches_scalar_bitwise_with_and_without_na() {
        use crate::stats::pair_t::paired_t;
        let rows = [
            vec![1.0, 2.0, 3.0, 5.0, 2.0, 4.0, 5.0, 9.0],
            vec![1.0, 2.0, f64::NAN, 5.0, 2.0, 4.0, 5.0, 9.0],
            vec![0.0, 1.0, 5.0, 6.0, -3.0, -2.0, 1.0, 2.0],
        ];
        for row in &rows {
            let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
            let scorer = PairTScorer::new(&m);
            for labels in [
                [0u8, 1, 0, 1, 0, 1, 0, 1],
                [1, 0, 1, 0, 1, 0, 1, 0],
                [1, 0, 0, 1, 0, 1, 1, 0],
            ] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = paired_t(row, &labels);
                if scalar.is_nan() {
                    assert!(fast.is_nan());
                } else {
                    assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
                }
            }
        }
    }

    #[test]
    fn blockf_matches_scalar_bitwise_with_and_without_na() {
        use crate::stats::block_f::block_f;
        let rows = [
            vec![1.0, 2.3, 2.0, 4.1, 3.0, 6.2],
            vec![1.0, f64::NAN, 2.0, 4.1, 3.0, 6.2],
            vec![1.0, 2.0, 11.0, 12.0, 21.0, 22.0],
        ];
        for row in &rows {
            let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
            let scorer = BlockFScorer::new(&m, 2);
            for labels in [[0u8, 1, 0, 1, 0, 1], [1, 0, 1, 0, 1, 0], [0, 1, 1, 0, 0, 1]] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = block_f(row, &labels, 2);
                if scalar.is_nan() {
                    assert!(fast.is_nan());
                } else {
                    assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
                }
            }
        }
    }

    #[test]
    fn batch_tile_is_bitwise_identical_to_one_at_a_time() {
        let data = vec![
            3.5,
            -1.25,
            7.0,
            0.5,
            2.25,
            -4.0,
            9.5,
            1.0, // gene 0: clean
            10.5,
            f64::NAN,
            9.0,
            10.0,
            14.25,
            13.0,
            15.5,
            14.0, // gene 1: NA
            0.3,
            2.0,
            -1.0,
            7.0,
            0.5,
            4.0,
            2.0,
            -3.5, // gene 2: clean
        ];
        let m = Matrix::from_vec(3, 8, data).unwrap();
        let arrangements: [[u8; 8]; 4] = [
            [0, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [1, 1, 0, 0, 0, 0, 1, 1],
            [0, 1, 1, 0, 1, 0, 0, 1],
        ];
        let scorers: Vec<Box<dyn Scorer>> = vec![
            Box::new(TwoSampleScorer::new(&m, true)),
            Box::new(TwoSampleScorer::new(&m, false)),
            Box::new(WilcoxonScorer::new(&m)),
            Box::new(FScorer::new(&m, 2)),
            Box::new(PairTScorer::new(&m)),
            Box::new(BlockFScorer::new(&m, 2)),
        ];
        let bufs: Vec<Vec<u8>> = arrangements.iter().map(|a| a.to_vec()).collect();
        for scorer in &scorers {
            let stride = bufs.len();
            let mut scratch = scorer.make_scratch();
            scorer.begin_batch(&bufs, &mut scratch);
            let mut batched = vec![f64::NAN; 3 * stride];
            // Two tiles to exercise tile boundaries.
            scorer.score_tile(&bufs, 0..2, &mut scratch, &mut batched, stride);
            scorer.score_tile(&bufs, 2..3, &mut scratch, &mut batched, stride);
            for (j, labels) in arrangements.iter().enumerate() {
                let single = stats_for(scorer.as_ref(), labels, 3);
                for g in 0..3 {
                    assert_eq!(
                        batched[g * stride + j].to_bits(),
                        single[g].to_bits(),
                        "{} gene {g} perm {j}",
                        scorer.path()
                    );
                }
            }
        }
    }

    #[test]
    fn constant_row_gives_nan_like_scalar() {
        let row = vec![5.0; 6];
        let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
        let scorer = TwoSampleScorer::new(&m, true);
        let labels = [0u8, 0, 0, 1, 1, 1];
        assert!(stats_for(&scorer, &labels, 1)[0].is_nan());
        assert!(welch_t(&row, &labels).is_nan());
    }

    #[test]
    fn degenerate_group_sizes_give_nan() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let t = TwoSampleScorer::new(&m, true);
        // One group-1 column: t undefined.
        assert!(stats_for(&t, &[0, 0, 0, 1], 1)[0].is_nan());
        // Wilcoxon allows 1 but not 0.
        let w = WilcoxonScorer::new(&m);
        assert!(stats_for(&w, &[0, 0, 0, 0], 1)[0].is_nan());
        assert!(stats_for(&w, &[0, 0, 0, 1], 1)[0].is_finite());
    }

    #[test]
    fn all_na_row_scores_nan_on_the_fast_path() {
        let m = Matrix::from_vec(1, 4, vec![f64::NAN; 4]).unwrap();
        let labels = [0u8, 0, 1, 1];
        for scorer in [
            Box::new(TwoSampleScorer::new(&m, true)) as Box<dyn Scorer>,
            Box::new(WilcoxonScorer::new(&m)),
            Box::new(FScorer::new(&m, 2)),
            Box::new(PairTScorer::new(&m)),
            Box::new(BlockFScorer::new(&m, 2)),
        ] {
            assert!(
                stats_for(scorer.as_ref(), &labels, 1)[0].is_nan(),
                "{}",
                scorer.path()
            );
        }
    }

    #[test]
    fn pivot_shift_keeps_large_offsets_stable() {
        let base = 1.0e8;
        let row: Vec<f64> = [1.0, 2.0, 3.0, 7.0, 8.0, 9.5]
            .iter()
            .map(|v| v + base)
            .collect();
        let centered: Vec<f64> = row.iter().map(|v| v - base).collect();
        let m = Matrix::from_vec(1, 6, row).unwrap();
        let scorer = TwoSampleScorer::new(&m, true);
        let labels = [0u8, 0, 0, 1, 1, 1];
        let fast = stats_for(&scorer, &labels, 1)[0];
        let reference = welch_t(&centered, &labels);
        assert!((fast - reference).abs() < 1e-9, "{fast} vs {reference}");
    }
}
