//! The unified scoring plane: one `Scorer` trait behind which every
//! execution layer (serial reference, batched engine, minP, pmaxt ranks,
//! jobd spans, bench backends) evaluates test statistics.
//!
//! A scorer has a two-phase contract:
//!
//! 1. **prepare** (the constructor): cache per-gene sufficient statistics
//!    once — S = Σ(x−pivot), Q = Σ(x−pivot)², per-pair differences, per-block
//!    partials, per-row non-missing counts — everything that does not change
//!    across permutations. The cached values live in column-major
//!    structure-of-arrays tiles ([`SoaColumns`]): one contiguous, cache-line
//!    aligned gene lane per column.
//! 2. **score** ([`Scorer::begin_batch`] + [`Scorer::score_tile`]): for a
//!    K-permutation batch, derive the per-arrangement structures (group-1
//!    column lists, class-major column lists, pair signs, selection bitsets)
//!    once in `begin_batch`, then score gene tiles with the **selected
//!    columns in the outer loop and a contiguous lane of genes in the inner
//!    loop** — an independent-accumulator form the compiler autovectorizes
//!    (see `stats::soa` for the kernels and DESIGN.md §4.10 for the layout).
//!
//! All six `mt.maxT` statistics have fast implementations here:
//!
//! - `t` / `t.equalvar`: per-arrangement lane sums s₁, q₁ over the group-1
//!   columns; group 0 recovered as S−s₁, Q−q₁; statistic in O(1) from the
//!   four moments.
//! - `wilcoxon`: lanes hold midranks, so the group-1 lane sum *is* the rank
//!   sum.
//! - `f`: per-class lane sums (s_c, q_c) give SS_between via
//!   Σ n_c·(s_c/n_c − x̄)² and SS_within via Σ (q_c − s_c²/n_c) — the exact
//!   scalar decomposition, never the cancellation-prone SS_total − SS_between.
//! - `pairt`: per-pair base differences d⁰_p = x_{2p+1} − x_{2p} and
//!   Σ(d⁰)² are permutation-invariant; an arrangement only flips signs, so
//!   scoring is **gather-free**: one ±1-broadcast scaled lane add per pair
//!   ([`lane_add_scaled`]).
//! - `blockf`: block sums, the grand totals, the correction term and
//!   SS_block are permutation-invariant (complete-block exclusion depends
//!   only on the data); a permutation only reshuffles which treatment each
//!   cell feeds, so scoring is one lane add per column into k treatment
//!   lanes.
//!
//! ## Missing values
//!
//! NA rows stay on the fast path — without a scalar gather fallback. Missing
//! cells are stored as `+0.0` in the lanes, which is **bitwise-neutral** in
//! every running sum (an IEEE accumulator starting at `+0.0` can never
//! become `-0.0` by adding finite values, and `x + ±0.0` then preserves
//! `x`'s bits — see `stats::soa`). Only the *counts* need fixing: each dirty
//! gene keeps a missing-column bitset ([`MissMask`]) that is ANDed with a
//! per-arrangement selected-column bitset — one popcount per dirty gene, no
//! per-cell branches. The paired designs need no correction at all: their
//! exclusions (incomplete pairs/blocks) are permutation-invariant and
//! cached. Degenerate arrangements (empty class, too few complete
//! pairs/blocks, zero variance) hit the same guards as the scalar functions
//! and yield `NaN`.
//!
//! ## Numerical-equivalence policy
//!
//! The fast path is constructed so that exceedance *counts* (the integers
//! the p-values are made of) match the reference scalar scorer:
//!
//! - every lane accumulation walks columns in ascending order — the exact
//!   order the scalar statistic pushes values into its accumulators — and
//!   zeroed missing cells are bitwise-neutral, so the per-gene `f64` sums
//!   are **bitwise identical** to the scalar ones, and Wilcoxon, paired t
//!   and block F are bitwise identical end to end;
//! - only the two-sample subtraction S−s₁ / Q−q₁ re-associates a sum, an
//!   error of a few ulps; the combining formulas mirror the scalar
//!   operation sequence (same literals, clamps and guards) so the final
//!   statistic differs by ulps at most;
//! - per (gene, arrangement) the operation sequence is independent of the
//!   tile/chunk geometry, so results are bitwise stable across any batch
//!   shape;
//! - the maxT count comparisons carry an absolute slack of
//!   [`crate::maxt::EPSILON`] = 1e-10, orders of magnitude above ulp noise,
//!   so the counts agree;
//! - observed statistics are computed through the *same* scorer as the
//!   permuted ones, so the identity permutation compares a value against
//!   itself and always counts, whichever scorer is active.
//!
//! ## Precision
//!
//! The fast scorers are generic over the accumulation element
//! ([`Real`]): `f64` is the default and the only mode with the bitwise
//! guarantees above; `f32` (opt-in via [`Precision::F32`] /
//! `SPRINT_PRECISION=f32`) halves the cached-tile footprint and doubles
//! SIMD lane width at a documented relative-error cost (DESIGN.md §4.10).
//! The scalar reference scorer is always `f64`.

use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::options::{KernelChoice, Precision, TestMethod};
use crate::stats::block_f::blockf_from_sums;
use crate::stats::f_stat::f_from_sums;
use crate::stats::moments::pivot_of;
use crate::stats::pair_t::pairt_from_moments;
use crate::stats::soa::{
    lane_add, lane_add_scaled, lane_add_sq, push_sel_mask, MissMask, Real, SoaColumns, SOA_TILE,
};
use crate::stats::two_sample::{equalvar_from_moments, welch_from_moments};
use crate::stats::wilcoxon::wilcoxon_from_counts;
use crate::stats::StatComputer;

/// Reusable per-thread scratch owned by the caller and shaped by the scorer:
/// permutation-derived index lists, pair signs, selection bitsets and lane
/// accumulators live here so the batch loop performs no allocation.
#[derive(Debug, Default, Clone)]
pub struct ScorerScratch {
    /// Flattened per-arrangement column-index lists (group-1 lists for the
    /// two-sample family, class-major lists for F).
    idx: Vec<usize>,
    /// Boundaries into `idx`: `arrangements + 1` entries for the two-sample
    /// family, `arrangements·k + 1` class-major entries for F.
    offsets: Vec<usize>,
    /// Per-arrangement pair signs (±1.0) for paired t, `vals[j·pairs + p]`.
    vals: Vec<f64>,
    /// Per-arrangement selected-column bitsets (one per arrangement for the
    /// two-sample family, class-major for F), only built when the data has
    /// dirty genes.
    sel: Vec<u64>,
    /// `f64` lane accumulators (statistic sections × tile width).
    lanes64: Vec<f64>,
    /// `f32` lane accumulators for the reduced-precision mode.
    lanes32: Vec<f32>,
}

/// Borrow-split view of [`ScorerScratch`]: the per-arrangement structures
/// stay readable while one precision's lane buffer is written. Public only
/// because [`crate::stats::soa::Real`] (a public bound of the fast scorers)
/// returns it; the fields stay crate-private.
#[doc(hidden)]
pub struct ScratchParts<'s, R> {
    pub(crate) idx: &'s [usize],
    pub(crate) offsets: &'s [usize],
    pub(crate) signs: &'s [f64],
    pub(crate) sel: &'s [u64],
    pub(crate) lanes: &'s mut Vec<R>,
}

impl ScorerScratch {
    pub(crate) fn parts_f64(&mut self) -> ScratchParts<'_, f64> {
        ScratchParts {
            idx: &self.idx,
            offsets: &self.offsets,
            signs: &self.vals,
            sel: &self.sel,
            lanes: &mut self.lanes64,
        }
    }

    pub(crate) fn parts_f32(&mut self) -> ScratchParts<'_, f32> {
        ScratchParts {
            idx: &self.idx,
            offsets: &self.offsets,
            signs: &self.vals,
            sel: &self.sel,
            lanes: &mut self.lanes32,
        }
    }
}

/// A prepared statistic evaluator: sufficient statistics cached at
/// construction, per-batch scoring through [`Scorer::begin_batch`] +
/// [`Scorer::score_tile`], one-shot scoring through [`Scorer::stats_into`].
pub trait Scorer: std::fmt::Debug + Send + Sync {
    /// Which implementation is active: `"scalar"` for the reference
    /// per-column path, otherwise the statistic's fast path name (with a
    /// `-f32` suffix in the reduced-precision mode).
    fn path(&self) -> &'static str;

    /// Allocate scratch for this scorer (callers keep one per thread).
    fn make_scratch(&self) -> ScorerScratch {
        ScorerScratch::default()
    }

    /// Pre-size the lane accumulators for tiles up to `max_tile` genes, so
    /// the first `score_tile` call performs no allocation. Optional — the
    /// tiles size themselves on demand.
    fn warm_scratch(&self, _scratch: &mut ScorerScratch, _max_tile: usize) {}

    /// Derive the per-arrangement structures for a batch of label buffers.
    /// Must be called before [`Scorer::score_tile`] whenever the batch
    /// changes; the derivations live in `scratch`.
    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch);

    /// Score the genes in `genes` for **every** arrangement of the current
    /// batch, writing raw statistics gene-major into `out[g·stride + j]`
    /// for arrangement `j`. Per (gene, arrangement) the operation sequence
    /// is batch-size-invariant, so results are bitwise identical across any
    /// batch/tile geometry.
    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    );

    /// Score every gene under a single label arrangement into `out`
    /// (indexed by gene). Convenience for the non-batched paths (observed
    /// statistics, the serial reference loop, sequential estimation).
    fn stats_into(&self, labels: &[u8], scratch: &mut ScorerScratch, out: &mut [f64]) {
        let bufs = [labels.to_vec()];
        self.begin_batch(&bufs, scratch);
        let genes = out.len();
        self.score_tile(&bufs, 0..genes, scratch, out, 1);
    }
}

/// Build the scorer for a run: the method's fast sufficient-statistic
/// implementation under `Auto`/`Fast`, the reference scalar scorer under
/// `Scalar` (the `SPRINT_KERNEL` and `SPRINT_PRECISION` debug overrides are
/// applied first). `precision` selects the accumulation element of the fast
/// path; the scalar scorer is always `f64`. Emits a once-per-process stderr
/// note naming the chosen path per method, so a forced scalar or `f32` run
/// is never silent.
pub fn build_scorer<'a>(
    data: &'a Matrix,
    labels: &ClassLabels,
    method: TestMethod,
    choice: KernelChoice,
    precision: Precision,
) -> Box<dyn Scorer + 'a> {
    let computer = StatComputer::new(method, labels);
    let scorer: Box<dyn Scorer + 'a> = match choice.env_override() {
        KernelChoice::Scalar => Box::new(ScalarScorer { data, computer }),
        KernelChoice::Auto | KernelChoice::Fast => match precision.env_override() {
            Precision::F64 => fast_scorer::<f64>(data, method, computer.classes()),
            Precision::F32 => fast_scorer::<f32>(data, method, computer.classes()),
        },
    };
    note_scorer_path(method, scorer.path());
    scorer
}

/// Construct the method's fast scorer at one accumulation precision.
fn fast_scorer<R: Real>(data: &Matrix, method: TestMethod, k: usize) -> Box<dyn Scorer> {
    match method {
        TestMethod::T => Box::new(TwoSampleScorer::<R>::new(data, true)),
        TestMethod::TEqualVar => Box::new(TwoSampleScorer::<R>::new(data, false)),
        TestMethod::Wilcoxon => Box::new(WilcoxonScorer::<R>::new(data)),
        TestMethod::F => Box::new(FScorer::<R>::new(data, k)),
        TestMethod::PairT => Box::new(PairTScorer::<R>::new(data)),
        TestMethod::BlockF => Box::new(BlockFScorer::<R>::new(data, k)),
        TestMethod::Corr => Box::new(CorrScorer::<R>::new(data, k)),
        // tmax scores per-gene Welch t; only the maxT counting layer differs
        // (single-step global max), which is not the scorer's concern.
        TestMethod::TMax => Box::new(TwoSampleScorer::<R>::new(data, true)),
    }
}

/// Note (once per method/path pair per process) which scorer a run uses.
/// Mirrors the once-per-var `SPRINT_*` env warnings: a debug override or an
/// unexpected path is visible on stderr instead of silently changing the
/// performance profile.
fn note_scorer_path(method: TestMethod, path: &'static str) {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static NOTED: OnceLock<Mutex<HashSet<(&'static str, &'static str)>>> = OnceLock::new();
    let noted = NOTED.get_or_init(|| Mutex::new(HashSet::new()));
    if noted.lock().unwrap().insert((method.as_str(), path)) {
        eprintln!(
            "note: scoring test \"{}\" via the {} scorer",
            method.as_str(),
            path
        );
    }
}

/// Collect the group-1 column lists of each arrangement into
/// `scratch.idx`/`scratch.offsets`, ascending — the once-per-batch O(n)
/// step shared by the two-sample family.
fn group1_lists(labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
    scratch.idx.clear();
    scratch.offsets.clear();
    scratch.offsets.push(0);
    for labels in labels_bufs {
        for (j, &l) in labels.iter().enumerate() {
            if l == 1 {
                scratch.idx.push(j);
            }
        }
        scratch.offsets.push(scratch.idx.len());
    }
}

/// The reference scalar scorer: one full O(n) per-column sweep per (gene,
/// arrangement) through [`StatComputer::compute`]. Always correct, never
/// fast — kept as the equivalence oracle behind `SPRINT_KERNEL=scalar`.
#[derive(Debug)]
pub struct ScalarScorer<'a> {
    data: &'a Matrix,
    computer: StatComputer,
}

impl<'a> ScalarScorer<'a> {
    /// Wrap a prepared matrix and its per-run dispatcher.
    pub fn new(data: &'a Matrix, computer: StatComputer) -> Self {
        ScalarScorer { data, computer }
    }
}

impl Scorer for ScalarScorer<'_> {
    fn path(&self) -> &'static str {
        "scalar"
    }

    fn begin_batch(&self, _labels_bufs: &[Vec<u8>], _scratch: &mut ScorerScratch) {}

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        _scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        for g in genes {
            let row = self.data.row(g);
            let slots = &mut out[g * stride..g * stride + labels_bufs.len()];
            for (slot, labels) in slots.iter_mut().zip(labels_bufs) {
                *slot = self.computer.compute(row, labels);
            }
        }
    }

    fn stats_into(&self, labels: &[u8], _scratch: &mut ScorerScratch, out: &mut [f64]) {
        for (g, slot) in out.iter_mut().enumerate() {
            *slot = self.computer.compute(self.data.row(g), labels);
        }
    }
}

/// Fast scorer for `t` (Welch) and `t.equalvar`: pivot-shifted values in
/// column-major lanes with per-gene totals S, Q; each arrangement needs one
/// fused sum/square-sum lane accumulation over its group-1 columns.
#[derive(Debug)]
pub struct TwoSampleScorer<R: Real> {
    welch: bool,
    cols: usize,
    /// Pivot-shifted values, column-major; missing cells hold `+0.0`.
    vals: SoaColumns<R>,
    /// Per gene: S = Σ shifted non-missing values (ascending column order).
    total_sum: Vec<R>,
    /// Per gene: Q = Σ shifted² non-missing values.
    total_sumsq: Vec<R>,
    /// Per gene: non-missing cell count.
    row_n: Vec<usize>,
    /// Per gene: no missing cells (skips the popcount correction).
    clean: Vec<bool>,
    /// Any gene dirty (enables the per-arrangement selection bitsets).
    any_dirty: bool,
    /// Per-gene missing-column bitsets.
    miss: MissMask,
}

impl<R: Real> TwoSampleScorer<R> {
    /// Cache sufficient statistics for a prepared matrix.
    pub fn new(data: &Matrix, welch: bool) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut vals = SoaColumns::new(rows, cols);
        let mut total_sum = Vec::with_capacity(rows);
        let mut total_sumsq = Vec::with_capacity(rows);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        let mut miss = MissMask::new(rows, cols);
        for g in 0..rows {
            let row = data.row(g);
            let pivot = pivot_of(row);
            let mut s = R::ZERO;
            let mut q = R::ZERO;
            let mut n = 0usize;
            for (c, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    miss.set(g, c); // cell stays +0.0 in the lane
                } else {
                    let x = R::from_f64(v - pivot);
                    vals.set(c, g, x);
                    s += x;
                    q += x * x;
                    n += 1;
                }
            }
            total_sum.push(s);
            total_sumsq.push(q);
            row_n.push(n);
            clean.push(n == cols);
        }
        let any_dirty = clean.iter().any(|&c| !c);
        TwoSampleScorer {
            welch,
            cols,
            vals,
            total_sum,
            total_sumsq,
            row_n,
            clean,
            any_dirty,
            miss,
        }
    }
}

impl<R: Real> Scorer for TwoSampleScorer<R> {
    fn path(&self) -> &'static str {
        if R::IS_F32 {
            "two-sample-f32"
        } else {
            "two-sample"
        }
    }

    fn warm_scratch(&self, scratch: &mut ScorerScratch, max_tile: usize) {
        R::parts(scratch)
            .lanes
            .resize(2 * max_tile.min(SOA_TILE), R::ZERO);
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        group1_lists(labels_bufs, scratch);
        scratch.sel.clear();
        if self.any_dirty {
            for labels in labels_bufs {
                push_sel_mask(&mut scratch.sel, self.miss.words(), labels, 1);
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let parts = R::parts(scratch);
        let words = self.miss.words();
        let mut start = genes.start;
        while start < genes.end {
            let chunk = start..(start + SOA_TILE).min(genes.end);
            let width = chunk.len();
            parts.lanes.resize(2 * width, R::ZERO);
            let (s1l, q1l) = parts.lanes.split_at_mut(width);
            for j in 0..labels_bufs.len() {
                let idx = &parts.idx[parts.offsets[j]..parts.offsets[j + 1]];
                s1l.fill(R::ZERO);
                q1l.fill(R::ZERO);
                // Group-1 columns ascending (the scalar push order), genes
                // inner: the autovectorized hot loop.
                for &jc in idx {
                    lane_add_sq(s1l, q1l, self.vals.col(jc, &chunk));
                }
                let sel: &[u64] = if self.any_dirty {
                    &parts.sel[j * words..(j + 1) * words]
                } else {
                    &[]
                };
                for (lane, g) in chunk.clone().enumerate() {
                    let slot = &mut out[g * stride + j];
                    let (n1, n0) = if self.clean[g] {
                        (idx.len(), self.cols - idx.len())
                    } else {
                        let n1 = idx.len() - MissMask::overlap(sel, self.miss.gene(g));
                        (n1, self.row_n[g] - n1)
                    };
                    // Mirrors the scalar guard `g0.n < 2 || g1.n < 2` on the
                    // post-NA-exclusion counts.
                    if n0 < 2 || n1 < 2 {
                        *slot = f64::NAN;
                        continue;
                    }
                    let s1 = s1l[lane];
                    let q1 = q1l[lane];
                    let s0 = self.total_sum[g] - s1;
                    let q0 = self.total_sumsq[g] - q1;
                    *slot = if self.welch {
                        welch_from_moments(R::from_usize(n0), s0, q0, R::from_usize(n1), s1, q1)
                            .to_f64()
                    } else {
                        equalvar_from_moments(R::from_usize(n0), s0, q0, R::from_usize(n1), s1, q1)
                            .to_f64()
                    };
                }
            }
            start = chunk.end;
        }
    }
}

/// Fast scorer for `wilcoxon`: lanes hold cached midranks, the group-1 lane
/// sum is the rank sum W, and the statistic is a pure function of W and the
/// group sizes — bitwise identical to the scalar path end to end.
#[derive(Debug)]
pub struct WilcoxonScorer<R: Real> {
    cols: usize,
    /// Midranks, column-major; missing cells hold `+0.0`.
    vals: SoaColumns<R>,
    /// Per gene: non-missing cell count.
    row_n: Vec<usize>,
    /// Per gene: no missing cells.
    clean: Vec<bool>,
    /// Any gene dirty.
    any_dirty: bool,
    /// Per-gene missing-column bitsets.
    miss: MissMask,
}

impl<R: Real> WilcoxonScorer<R> {
    /// Cache the (already rank-transformed) rows.
    pub fn new(data: &Matrix) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut vals = SoaColumns::new(rows, cols);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        let mut miss = MissMask::new(rows, cols);
        for g in 0..rows {
            let row = data.row(g);
            let mut n = 0usize;
            for (c, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    miss.set(g, c);
                } else {
                    vals.set(c, g, R::from_f64(v));
                    n += 1;
                }
            }
            row_n.push(n);
            clean.push(n == cols);
        }
        let any_dirty = clean.iter().any(|&c| !c);
        WilcoxonScorer {
            cols,
            vals,
            row_n,
            clean,
            any_dirty,
            miss,
        }
    }
}

impl<R: Real> Scorer for WilcoxonScorer<R> {
    fn path(&self) -> &'static str {
        if R::IS_F32 {
            "wilcoxon-f32"
        } else {
            "wilcoxon"
        }
    }

    fn warm_scratch(&self, scratch: &mut ScorerScratch, max_tile: usize) {
        R::parts(scratch)
            .lanes
            .resize(max_tile.min(SOA_TILE), R::ZERO);
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        group1_lists(labels_bufs, scratch);
        scratch.sel.clear();
        if self.any_dirty {
            for labels in labels_bufs {
                push_sel_mask(&mut scratch.sel, self.miss.words(), labels, 1);
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let parts = R::parts(scratch);
        let words = self.miss.words();
        let mut start = genes.start;
        while start < genes.end {
            let chunk = start..(start + SOA_TILE).min(genes.end);
            let width = chunk.len();
            parts.lanes.resize(width, R::ZERO);
            let wl = &mut parts.lanes[..width];
            for j in 0..labels_bufs.len() {
                let idx = &parts.idx[parts.offsets[j]..parts.offsets[j + 1]];
                wl.fill(R::ZERO);
                for &jc in idx {
                    lane_add(wl, self.vals.col(jc, &chunk));
                }
                let sel: &[u64] = if self.any_dirty {
                    &parts.sel[j * words..(j + 1) * words]
                } else {
                    &[]
                };
                for (lane, g) in chunk.clone().enumerate() {
                    let slot = &mut out[g * stride + j];
                    let (n1, n0) = if self.clean[g] {
                        (idx.len(), self.cols - idx.len())
                    } else {
                        let n1 = idx.len() - MissMask::overlap(sel, self.miss.gene(g));
                        (n1, self.row_n[g] - n1)
                    };
                    *slot = if n0 == 0 || n1 == 0 {
                        f64::NAN
                    } else {
                        wilcoxon_from_counts(n0, n1, wl[lane]).to_f64()
                    };
                }
            }
            start = chunk.end;
        }
    }
}

/// Fast scorer for the one-way `f` statistic over k classes: per-class lane
/// sums (s_c, q_c) from pivot-shifted lanes reproduce the scalar
/// between/within decomposition bitwise; the grand mean is
/// permutation-invariant and cached.
#[derive(Debug)]
pub struct FScorer<R: Real> {
    k: usize,
    /// Pivot-shifted values, column-major; missing cells hold `+0.0`.
    vals: SoaColumns<R>,
    /// Per gene: grand mean S/n of the non-missing values
    /// (permutation-invariant; garbage when `row_n == 0`, guarded by
    /// `n <= k`).
    grand_mean: Vec<R>,
    /// Per gene: non-missing cell count.
    row_n: Vec<usize>,
    /// Per gene: no missing cells.
    clean: Vec<bool>,
    /// Any gene dirty.
    any_dirty: bool,
    /// Per-gene missing-column bitsets.
    miss: MissMask,
}

impl<R: Real> FScorer<R> {
    /// Cache sufficient statistics; `k` is the class count of the design.
    pub fn new(data: &Matrix, k: usize) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut vals = SoaColumns::new(rows, cols);
        let mut grand_mean = Vec::with_capacity(rows);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        let mut miss = MissMask::new(rows, cols);
        for g in 0..rows {
            let row = data.row(g);
            let pivot = pivot_of(row);
            let mut s = R::ZERO;
            let mut n = 0usize;
            for (c, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    miss.set(g, c);
                } else {
                    let x = R::from_f64(v - pivot);
                    vals.set(c, g, x);
                    s += x;
                    n += 1;
                }
            }
            grand_mean.push(s / R::from_usize(n));
            row_n.push(n);
            clean.push(n == cols);
        }
        let any_dirty = clean.iter().any(|&c| !c);
        FScorer {
            k,
            vals,
            grand_mean,
            row_n,
            clean,
            any_dirty,
            miss,
        }
    }
}

impl<R: Real> Scorer for FScorer<R> {
    fn path(&self) -> &'static str {
        if R::IS_F32 {
            "f-f32"
        } else {
            "f"
        }
    }

    fn warm_scratch(&self, scratch: &mut ScorerScratch, max_tile: usize) {
        R::parts(scratch)
            .lanes
            .resize(4 * max_tile.min(SOA_TILE), R::ZERO);
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        // Class-major column lists: for arrangement j and class c the list is
        // `idx[offsets[j·k + c]..offsets[j·k + c + 1]]`, ascending — the
        // order the scalar path pushes class-c values.
        scratch.idx.clear();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        scratch.sel.clear();
        for labels in labels_bufs {
            for c in 0..self.k {
                for (j, &l) in labels.iter().enumerate() {
                    if l as usize == c {
                        scratch.idx.push(j);
                    }
                }
                scratch.offsets.push(scratch.idx.len());
                if self.any_dirty {
                    push_sel_mask(&mut scratch.sel, self.miss.words(), labels, c as u8);
                }
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let k = self.k;
        let parts = R::parts(scratch);
        let words = self.miss.words();
        // Class sizes are permutation-invariant, so arrangement 0 tells all:
        // an empty class plants NaN markers in every lane of every tile and
        // the branch-free output sweep must stand down.
        let has_empty_class = (0..k).any(|c| parts.offsets[c + 1] == parts.offsets[c]);
        let mut start = genes.start;
        while start < genes.end {
            let chunk = start..(start + SOA_TILE).min(genes.end);
            let width = chunk.len();
            // A fully clean sub-tile runs the branch-free lane loops below:
            // per-class counts are then tile-uniform (permutations preserve
            // class sizes), so the finalization sweeps autovectorize. The
            // arithmetic sequence per lane is the same either way — the
            // split is a control-flow specialization, not a formula change.
            let all_clean = !self.any_dirty || self.clean[chunk.clone()].iter().all(|&c| c);
            let gm = &self.grand_mean[chunk.clone()];
            parts.lanes.resize(4 * width, R::ZERO);
            let (scl, rest) = parts.lanes.split_at_mut(width);
            let (qcl, rest) = rest.split_at_mut(width);
            let (ssb, ssw) = rest.split_at_mut(width);
            for j in 0..labels_bufs.len() {
                ssb.fill(R::ZERO);
                ssw.fill(R::ZERO);
                // Classes in ascending order (the scalar combine order);
                // within a class, columns ascending (the scalar push order).
                for c in 0..k {
                    let cls = &parts.idx[parts.offsets[j * k + c]..parts.offsets[j * k + c + 1]];
                    scl.fill(R::ZERO);
                    qcl.fill(R::ZERO);
                    for &jc in cls {
                        lane_add_sq(scl, qcl, self.vals.col(jc, &chunk));
                    }
                    if all_clean && !cls.is_empty() {
                        let ncf = R::from_usize(cls.len());
                        // Scalar sequence: d = mean − grand_mean,
                        // SSB += n·d², SSW += (q − s²/n).max(0).
                        for lane in 0..width {
                            let d = scl[lane] / ncf - gm[lane];
                            ssb[lane] += ncf * d * d;
                            ssw[lane] += (qcl[lane] - scl[lane] * scl[lane] / ncf).max(R::ZERO);
                        }
                        continue;
                    }
                    let sel: &[u64] = if self.any_dirty {
                        &parts.sel[(j * k + c) * words..(j * k + c + 1) * words]
                    } else {
                        &[]
                    };
                    for (lane, g) in chunk.clone().enumerate() {
                        let nc = if self.clean[g] {
                            cls.len()
                        } else {
                            cls.len() - MissMask::overlap(sel, self.miss.gene(g))
                        };
                        if nc == 0 {
                            // Empty class ⇒ NaN; the marker survives later
                            // classes because NaN + x = NaN.
                            ssw[lane] = R::nan();
                            continue;
                        }
                        let ncf = R::from_usize(nc);
                        // Scalar sequence: d = mean − grand_mean, SSB += n·d²,
                        // SSW += (q − s²/n).max(0).
                        let d = scl[lane] / ncf - self.grand_mean[g];
                        ssb[lane] += ncf * d * d;
                        ssw[lane] += (qcl[lane] - scl[lane] * scl[lane] / ncf).max(R::ZERO);
                    }
                }
                if all_clean && !has_empty_class && self.row_n[chunk.start] > k {
                    // Clean tile: n is tile-uniform, no NaN markers can have
                    // been set (class sizes are permutation-invariant and
                    // non-zero), so the output sweep is branch-free too.
                    let n = self.row_n[chunk.start];
                    for (lane, g) in chunk.clone().enumerate() {
                        out[g * stride + j] = f_from_sums(k, n, ssb[lane], ssw[lane]).to_f64();
                    }
                    continue;
                }
                for (lane, g) in chunk.clone().enumerate() {
                    let n = self.row_n[g];
                    // Mirrors the scalar `n <= k` degrees-of-freedom guard;
                    // the non-missing count is permutation-invariant.
                    out[g * stride + j] = if n <= k || ssw[lane].is_nan() {
                        f64::NAN
                    } else {
                        f_from_sums(k, n, ssb[lane], ssw[lane]).to_f64()
                    };
                }
            }
            start = chunk.end;
        }
    }
}

/// Fast scorer for `corr` (Pearson correlation of each gene row against the
/// numeric class codes): the x-side moments Σx, Σx² and the non-missing
/// count are permutation-invariant and cached; an arrangement only re-pairs
/// the y codes, so scoring needs one lane sum per class (Σ_c c·s_c gives
/// Σxy) plus, for clean tiles, two *scalar* class-size accumulators for the
/// y-side moments (class sizes are permutation-invariant). Dirty genes fix
/// the y moments with the same MissMask popcounts as the other scorers.
#[derive(Debug)]
pub struct CorrScorer<R: Real> {
    k: usize,
    /// Raw values, column-major; missing cells hold `+0.0` (bitwise-neutral
    /// in the lane sums feeding Σxy).
    vals: SoaColumns<R>,
    /// Per gene: Σx over non-missing values (ascending column order).
    total_sum: Vec<R>,
    /// Per gene: Σx² over non-missing values.
    total_sumsq: Vec<R>,
    /// Per gene: non-missing cell count.
    row_n: Vec<usize>,
    /// Per gene: no missing cells.
    clean: Vec<bool>,
    /// Any gene dirty.
    any_dirty: bool,
    /// Per-gene missing-column bitsets.
    miss: MissMask,
}

impl<R: Real> CorrScorer<R> {
    /// Cache the x-side sufficient statistics; `k` is the class count.
    pub fn new(data: &Matrix, k: usize) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let mut vals = SoaColumns::new(rows, cols);
        let mut total_sum = Vec::with_capacity(rows);
        let mut total_sumsq = Vec::with_capacity(rows);
        let mut row_n = Vec::with_capacity(rows);
        let mut clean = Vec::with_capacity(rows);
        let mut miss = MissMask::new(rows, cols);
        for g in 0..rows {
            let row = data.row(g);
            let mut s = R::ZERO;
            let mut q = R::ZERO;
            let mut n = 0usize;
            for (c, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    miss.set(g, c);
                } else {
                    let x = R::from_f64(v);
                    vals.set(c, g, x);
                    s += x;
                    q += x * x;
                    n += 1;
                }
            }
            total_sum.push(s);
            total_sumsq.push(q);
            row_n.push(n);
            clean.push(n == cols);
        }
        let any_dirty = clean.iter().any(|&c| !c);
        CorrScorer {
            k,
            vals,
            total_sum,
            total_sumsq,
            row_n,
            clean,
            any_dirty,
            miss,
        }
    }
}

impl<R: Real> Scorer for CorrScorer<R> {
    fn path(&self) -> &'static str {
        if R::IS_F32 {
            "corr-f32"
        } else {
            "corr"
        }
    }

    fn warm_scratch(&self, scratch: &mut ScorerScratch, max_tile: usize) {
        R::parts(scratch)
            .lanes
            .resize(4 * max_tile.min(SOA_TILE), R::ZERO);
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        // Class-major column lists exactly as FScorer builds them.
        scratch.idx.clear();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        scratch.sel.clear();
        for labels in labels_bufs {
            for c in 0..self.k {
                for (j, &l) in labels.iter().enumerate() {
                    if l as usize == c {
                        scratch.idx.push(j);
                    }
                }
                scratch.offsets.push(scratch.idx.len());
                if self.any_dirty {
                    push_sel_mask(&mut scratch.sel, self.miss.words(), labels, c as u8);
                }
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let k = self.k;
        let parts = R::parts(scratch);
        let words = self.miss.words();
        let mut start = genes.start;
        while start < genes.end {
            let chunk = start..(start + SOA_TILE).min(genes.end);
            let width = chunk.len();
            let all_clean = !self.any_dirty || self.clean[chunk.clone()].iter().all(|&c| c);
            parts.lanes.resize(4 * width, R::ZERO);
            let (scl, rest) = parts.lanes.split_at_mut(width);
            let (sxyl, rest) = rest.split_at_mut(width);
            let (syl, syyl) = rest.split_at_mut(width);
            for j in 0..labels_bufs.len() {
                sxyl.fill(R::ZERO);
                syl.fill(R::ZERO);
                syyl.fill(R::ZERO);
                // Class sizes are permutation-invariant, so for clean genes
                // Σy and Σy² collapse to two scalars shared by every lane.
                let mut sy_const = R::ZERO;
                let mut syy_const = R::ZERO;
                // Classes ascending; within a class, columns ascending.
                for c in 0..k {
                    let cls = &parts.idx[parts.offsets[j * k + c]..parts.offsets[j * k + c + 1]];
                    scl.fill(R::ZERO);
                    for &jc in cls {
                        lane_add(scl, self.vals.col(jc, &chunk));
                    }
                    let cf = R::from_usize(c);
                    for lane in 0..width {
                        sxyl[lane] += cf * scl[lane];
                    }
                    if all_clean {
                        let ncf = R::from_usize(cls.len());
                        sy_const += cf * ncf;
                        syy_const += cf * cf * ncf;
                        continue;
                    }
                    let sel = &parts.sel[(j * k + c) * words..(j * k + c + 1) * words];
                    for (lane, g) in chunk.clone().enumerate() {
                        let nc = if self.clean[g] {
                            cls.len()
                        } else {
                            cls.len() - MissMask::overlap(sel, self.miss.gene(g))
                        };
                        let ncf = R::from_usize(nc);
                        syl[lane] += cf * ncf;
                        syyl[lane] += cf * cf * ncf;
                    }
                }
                for (lane, g) in chunk.clone().enumerate() {
                    let slot = &mut out[g * stride + j];
                    let n = self.row_n[g];
                    // Mirrors the scalar guard: < 3 complete samples ⇒ NaN.
                    if n < 3 {
                        *slot = f64::NAN;
                        continue;
                    }
                    let (sy, syy) = if all_clean {
                        (sy_const, syy_const)
                    } else {
                        (syl[lane], syyl[lane])
                    };
                    let nf = R::from_usize(n);
                    let sx = self.total_sum[g];
                    let sxx = self.total_sumsq[g];
                    // The scalar formula verbatim: cov/√(vx·vy) with the
                    // same non-positive-variance guards.
                    let cov = nf * sxyl[lane] - sx * sy;
                    let vx = nf * sxx - sx * sx;
                    let vy = nf * syy - sy * sy;
                    *slot = if vx <= R::ZERO || vy <= R::ZERO {
                        f64::NAN
                    } else {
                        (cov / (vx * vy).sqrt()).to_f64()
                    };
                }
            }
            start = chunk.end;
        }
    }
}

/// Fast scorer for `pairt`: per-pair base differences d⁰ = x₂ₚ₊₁ − x₂ₚ and
/// their square sum are cached; an arrangement only flips signs, so scoring
/// is **gather-free** — one ±1-broadcast scaled lane add per pair.
#[derive(Debug)]
pub struct PairTScorer<R: Real> {
    pairs: usize,
    /// Base differences, column-major (one column per pair); incomplete
    /// pairs hold `+0.0` (±1·0.0 is bitwise-neutral in the signed sum).
    diffs: SoaColumns<R>,
    /// Per gene: Σ d⁰² over complete pairs (sign-invariant, so equal to the
    /// scalar accumulator's square sum bitwise).
    sumsq: Vec<R>,
    /// Per gene: complete-pair count (permutation-invariant).
    n: Vec<usize>,
}

impl<R: Real> PairTScorer<R> {
    /// Cache pair differences for a prepared matrix.
    pub fn new(data: &Matrix) -> Self {
        let pairs = data.cols() / 2;
        let rows = data.rows();
        let mut diffs = SoaColumns::new(rows, pairs);
        let mut sumsq = Vec::with_capacity(rows);
        let mut n_vec = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let mut q = R::ZERO;
            let mut n = 0usize;
            for p in 0..pairs {
                let a = row[2 * p];
                let b = row[2 * p + 1];
                if !(a.is_nan() || b.is_nan()) {
                    let d = R::from_f64(b - a);
                    diffs.set(p, g, d);
                    q += d * d;
                    n += 1;
                }
            }
            sumsq.push(q);
            n_vec.push(n);
        }
        PairTScorer {
            pairs,
            diffs,
            sumsq,
            n: n_vec,
        }
    }
}

impl<R: Real> Scorer for PairTScorer<R> {
    fn path(&self) -> &'static str {
        if R::IS_F32 {
            "pairt-f32"
        } else {
            "pairt"
        }
    }

    fn warm_scratch(&self, scratch: &mut ScorerScratch, max_tile: usize) {
        R::parts(scratch)
            .lanes
            .resize(max_tile.min(SOA_TILE), R::ZERO);
    }

    fn begin_batch(&self, labels_bufs: &[Vec<u8>], scratch: &mut ScorerScratch) {
        // Pair signs: labels[2p] == 0 means the second member carries label 1
        // and the scalar difference is d⁰ = b − a (sign +1); otherwise −1.
        scratch.vals.clear();
        scratch.vals.reserve(labels_bufs.len() * self.pairs);
        for labels in labels_bufs {
            for p in 0..self.pairs {
                scratch
                    .vals
                    .push(if labels[2 * p] == 0 { 1.0 } else { -1.0 });
            }
        }
    }

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let pairs = self.pairs;
        let parts = R::parts(scratch);
        let mut start = genes.start;
        while start < genes.end {
            let chunk = start..(start + SOA_TILE).min(genes.end);
            let width = chunk.len();
            parts.lanes.resize(width, R::ZERO);
            let sl = &mut parts.lanes[..width];
            for j in 0..labels_bufs.len() {
                let signs = &parts.signs[j * pairs..(j + 1) * pairs];
                sl.fill(R::ZERO);
                // ±1·d⁰ is bitwise the scalar's per-pair difference, and the
                // pair-order sum matches the scalar accumulator exactly.
                for (p, &w) in signs.iter().enumerate() {
                    lane_add_scaled(sl, self.diffs.col(p, &chunk), R::from_f64(w));
                }
                for (lane, g) in chunk.clone().enumerate() {
                    let n = self.n[g];
                    out[g * stride + j] = if n < 2 {
                        f64::NAN
                    } else {
                        pairt_from_moments(n, sl[lane], self.sumsq[g]).to_f64()
                    };
                }
            }
            start = chunk.end;
        }
    }
}

/// Fast scorer for `blockf`: block sums, the grand totals, the correction
/// term, SS_total and SS_block depend only on the data (complete-block
/// exclusion is label-free), so they are cached; scoring an arrangement is
/// one lane add per column into k treatment lanes plus an O(k) combine.
#[derive(Debug)]
pub struct BlockFScorer<R: Real> {
    k: usize,
    cols: usize,
    /// Pivot-shifted values, column-major; cells of incomplete blocks hold
    /// `+0.0` so every column can be added unconditionally.
    vals: SoaColumns<R>,
    /// Per gene: complete-block count m.
    m_used: Vec<usize>,
    /// Per gene: C = (grand sum)²/(m·k). Garbage when `m_used == 0` — the
    /// `m_used < 2` guard keeps it unread.
    correction: Vec<R>,
    /// Per gene: SS_total = (grand Σx² − C).max(0).
    ss_total: Vec<R>,
    /// Per gene: SS_block = (Σ_b (block sum)²/k − C).max(0).
    ss_block: Vec<R>,
}

impl<R: Real> BlockFScorer<R> {
    /// Cache block partials; `k` is the treatment count of the design.
    pub fn new(data: &Matrix, k: usize) -> Self {
        let cols = data.cols();
        let rows = data.rows();
        let blocks = cols / k;
        let mut vals = SoaColumns::new(rows, cols);
        let mut m_used = Vec::with_capacity(rows);
        let mut correction = Vec::with_capacity(rows);
        let mut ss_total = Vec::with_capacity(rows);
        let mut ss_block = Vec::with_capacity(rows);
        for g in 0..rows {
            let row = data.row(g);
            let pivot = pivot_of(row);
            let mut m = 0usize;
            let mut grand_sum = R::ZERO;
            let mut grand_sumsq = R::ZERO;
            let mut block_sum_sq = R::ZERO;
            for b in 0..blocks {
                let cells = &row[b * k..(b + 1) * k];
                if cells.iter().any(|v| v.is_nan()) {
                    continue;
                }
                let mut bsum = R::ZERO;
                // The scalar path accumulates per cell in block order; the
                // shifted values here are the same fl(v − pivot) bits.
                for (i, &v) in cells.iter().enumerate() {
                    let x = R::from_f64(v - pivot);
                    vals.set(b * k + i, g, x);
                    bsum += x;
                    grand_sum += x;
                    grand_sumsq += x * x;
                }
                block_sum_sq += bsum * bsum;
                m += 1;
            }
            m_used.push(m);
            let n = R::from_usize(m * k);
            let c = grand_sum * grand_sum / n;
            correction.push(c);
            ss_total.push((grand_sumsq - c).max(R::ZERO));
            ss_block.push((block_sum_sq / R::from_usize(k) - c).max(R::ZERO));
        }
        BlockFScorer {
            k,
            cols,
            vals,
            m_used,
            correction,
            ss_total,
            ss_block,
        }
    }
}

impl<R: Real> Scorer for BlockFScorer<R> {
    fn path(&self) -> &'static str {
        if R::IS_F32 {
            "blockf-f32"
        } else {
            "blockf"
        }
    }

    fn warm_scratch(&self, scratch: &mut ScorerScratch, max_tile: usize) {
        R::parts(scratch)
            .lanes
            .resize(self.k * max_tile.min(SOA_TILE), R::ZERO);
    }

    fn begin_batch(&self, _labels_bufs: &[Vec<u8>], _scratch: &mut ScorerScratch) {}

    fn score_tile(
        &self,
        labels_bufs: &[Vec<u8>],
        genes: std::ops::Range<usize>,
        scratch: &mut ScorerScratch,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(labels_bufs.len() <= stride);
        let k = self.k;
        let parts = R::parts(scratch);
        let mut start = genes.start;
        while start < genes.end {
            let chunk = start..(start + SOA_TILE).min(genes.end);
            let width = chunk.len();
            parts.lanes.resize(k * width, R::ZERO);
            for (j, labels) in labels_bufs.iter().enumerate() {
                parts.lanes.fill(R::ZERO);
                // One lane add per column, in the scalar's exact ascending
                // cell order; excluded cells contribute a bitwise-neutral
                // +0.0 to whatever treatment their label names.
                for (col, &l) in labels.iter().enumerate().take(self.cols) {
                    let t = l as usize;
                    lane_add(
                        &mut parts.lanes[t * width..(t + 1) * width],
                        self.vals.col(col, &chunk),
                    );
                }
                for (lane, g) in chunk.clone().enumerate() {
                    let m = self.m_used[g];
                    if m < 2 {
                        out[g * stride + j] = f64::NAN;
                        continue;
                    }
                    // Σ_t (treat sum)² in ascending treatment order — the
                    // scalar iterator-sum sequence.
                    let mut sq = R::ZERO;
                    for t in 0..k {
                        let s = parts.lanes[t * width + lane];
                        sq += s * s;
                    }
                    let ss_treat = (sq / R::from_usize(m) - self.correction[g]).max(R::ZERO);
                    out[g * stride + j] =
                        blockf_from_sums(k, m, ss_treat, self.ss_block[g], self.ss_total[g])
                            .to_f64();
                }
            }
            start = chunk.end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ranks::midranks;
    use crate::stats::two_sample::{equalvar_t, welch_t};
    use crate::stats::wilcoxon::wilcoxon_from_ranks;

    fn labels_of(method: TestMethod, raw: Vec<u8>) -> ClassLabels {
        ClassLabels::new(raw, method).unwrap()
    }

    fn stats_for(scorer: &dyn Scorer, labels: &[u8], genes: usize) -> Vec<f64> {
        let mut scratch = scorer.make_scratch();
        let mut out = vec![f64::NAN; genes];
        scorer.stats_into(labels, &mut scratch, &mut out);
        out
    }

    fn assert_same_stat(fast: f64, scalar: f64, what: &str) {
        if scalar.is_nan() {
            assert!(fast.is_nan(), "{what}: fast {fast} vs scalar NaN");
        } else {
            assert!(
                (fast - scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
                "{what}: fast {fast} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn builder_selects_fast_path_per_method_and_scalar_override() {
        let m = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 7.0]).unwrap();
        let cases = [
            (TestMethod::T, vec![0u8, 0, 0, 1, 1, 1], "two-sample"),
            (TestMethod::TEqualVar, vec![0, 0, 0, 1, 1, 1], "two-sample"),
            (TestMethod::Wilcoxon, vec![0, 0, 0, 1, 1, 1], "wilcoxon"),
            (TestMethod::F, vec![0, 0, 1, 1, 2, 2], "f"),
            (TestMethod::PairT, vec![0, 1, 0, 1, 0, 1], "pairt"),
            (TestMethod::BlockF, vec![0, 1, 0, 1, 0, 1], "blockf"),
        ];
        for (method, raw, path) in cases {
            let labels = labels_of(method, raw);
            let fast = build_scorer(&m, &labels, method, KernelChoice::Auto, Precision::F64);
            assert_eq!(fast.path(), path, "{method:?}");
            let scalar = build_scorer(&m, &labels, method, KernelChoice::Scalar, Precision::F64);
            assert_eq!(scalar.path(), "scalar", "{method:?}");
        }
    }

    #[test]
    fn f32_precision_selects_the_f32_fast_paths() {
        let m = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 7.0]).unwrap();
        let cases = [
            (TestMethod::T, vec![0u8, 0, 0, 1, 1, 1], "two-sample-f32"),
            (
                TestMethod::TEqualVar,
                vec![0, 0, 0, 1, 1, 1],
                "two-sample-f32",
            ),
            (TestMethod::Wilcoxon, vec![0, 0, 0, 1, 1, 1], "wilcoxon-f32"),
            (TestMethod::F, vec![0, 0, 1, 1, 2, 2], "f-f32"),
            (TestMethod::PairT, vec![0, 1, 0, 1, 0, 1], "pairt-f32"),
            (TestMethod::BlockF, vec![0, 1, 0, 1, 0, 1], "blockf-f32"),
        ];
        for (method, raw, path) in cases {
            let labels = labels_of(method, raw.clone());
            let fast = build_scorer(&m, &labels, method, KernelChoice::Auto, Precision::F32);
            assert_eq!(fast.path(), path, "{method:?}");
            // A statistic still comes out, close to the f64 one on benign data.
            let f32_stat = stats_for(fast.as_ref(), &raw, 1)[0];
            let f64_scorer = build_scorer(&m, &labels, method, KernelChoice::Auto, Precision::F64);
            let f64_stat = stats_for(f64_scorer.as_ref(), &raw, 1)[0];
            assert!(
                (f32_stat - f64_stat).abs() <= 1e-3 * f64_stat.abs().max(1.0),
                "{method:?}: f32 {f32_stat} vs f64 {f64_stat}"
            );
            // The scalar override wins over the precision request.
            let scalar = build_scorer(&m, &labels, method, KernelChoice::Scalar, Precision::F32);
            assert_eq!(scalar.path(), "scalar", "{method:?}");
        }
    }

    #[test]
    fn welch_and_equalvar_match_scalar() {
        let row = vec![3.5, -1.25, 7.0, 0.5, 2.25, -4.0, 9.5, 1.0];
        let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
        for welch in [true, false] {
            let scorer = TwoSampleScorer::<f64>::new(&m, welch);
            for labels in [
                [0u8, 0, 0, 0, 1, 1, 1, 1],
                [1, 0, 1, 0, 1, 0, 1, 0],
                [1, 1, 0, 0, 0, 0, 1, 1],
            ] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = if welch {
                    welch_t(&row, &labels)
                } else {
                    equalvar_t(&row, &labels)
                };
                assert_same_stat(fast, scalar, "two-sample");
            }
        }
    }

    #[test]
    fn na_rows_stay_on_the_fast_path_with_adjusted_counts() {
        let row = vec![3.5, f64::NAN, 7.0, 0.5, f64::NAN, -4.0, 9.5, 1.0];
        let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
        for welch in [true, false] {
            let scorer = TwoSampleScorer::<f64>::new(&m, welch);
            for labels in [
                [0u8, 0, 0, 0, 1, 1, 1, 1],
                [1, 0, 1, 0, 1, 0, 1, 0],
                [1, 1, 1, 0, 0, 0, 0, 1],
            ] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = if welch {
                    welch_t(&row, &labels)
                } else {
                    equalvar_t(&row, &labels)
                };
                assert_same_stat(fast, scalar, "two-sample NA");
            }
        }
    }

    #[test]
    fn wilcoxon_is_bitwise_identical_to_scalar() {
        let data = [0.3, 2.0, -1.0, 7.0, 0.5, 4.0, 2.0, -3.5];
        let mut ranks = midranks(&data);
        ranks[3] = f64::NAN; // a missing cell after ranking exercises the dirty path
        let m = Matrix::from_vec(1, 8, ranks.clone()).unwrap();
        let scorer = WilcoxonScorer::<f64>::new(&m);
        for labels in [
            [0u8, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [0, 1, 1, 1, 1, 1, 1, 1],
        ] {
            let fast = stats_for(&scorer, &labels, 1)[0];
            let scalar = wilcoxon_from_ranks(&ranks, &labels);
            assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
        }
    }

    #[test]
    fn f_matches_scalar_bitwise_with_and_without_na() {
        use crate::stats::f_stat::oneway_f;
        let rows = [
            vec![1.0, 2.0, 4.0, 6.0, 5.0, 9.0],
            vec![1.0, f64::NAN, 4.0, 6.0, 5.0, 9.0],
            vec![7.0; 6],
        ];
        for row in &rows {
            let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
            let scorer = FScorer::<f64>::new(&m, 3);
            for labels in [[0u8, 0, 1, 1, 2, 2], [2, 1, 0, 2, 1, 0], [0, 1, 2, 0, 1, 2]] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = oneway_f(row, &labels, 3);
                if scalar.is_nan() {
                    assert!(fast.is_nan());
                } else {
                    assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
                }
            }
        }
    }

    #[test]
    fn pairt_matches_scalar_bitwise_with_and_without_na() {
        use crate::stats::pair_t::paired_t;
        let rows = [
            vec![1.0, 2.0, 3.0, 5.0, 2.0, 4.0, 5.0, 9.0],
            vec![1.0, 2.0, f64::NAN, 5.0, 2.0, 4.0, 5.0, 9.0],
            vec![0.0, 1.0, 5.0, 6.0, -3.0, -2.0, 1.0, 2.0],
        ];
        for row in &rows {
            let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
            let scorer = PairTScorer::<f64>::new(&m);
            for labels in [
                [0u8, 1, 0, 1, 0, 1, 0, 1],
                [1, 0, 1, 0, 1, 0, 1, 0],
                [1, 0, 0, 1, 0, 1, 1, 0],
            ] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = paired_t(row, &labels);
                if scalar.is_nan() {
                    assert!(fast.is_nan());
                } else {
                    assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
                }
            }
        }
    }

    #[test]
    fn blockf_matches_scalar_bitwise_with_and_without_na() {
        use crate::stats::block_f::block_f;
        let rows = [
            vec![1.0, 2.3, 2.0, 4.1, 3.0, 6.2],
            vec![1.0, f64::NAN, 2.0, 4.1, 3.0, 6.2],
            vec![1.0, 2.0, 11.0, 12.0, 21.0, 22.0],
        ];
        for row in &rows {
            let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
            let scorer = BlockFScorer::<f64>::new(&m, 2);
            for labels in [[0u8, 1, 0, 1, 0, 1], [1, 0, 1, 0, 1, 0], [0, 1, 1, 0, 0, 1]] {
                let fast = stats_for(&scorer, &labels, 1)[0];
                let scalar = block_f(row, &labels, 2);
                if scalar.is_nan() {
                    assert!(fast.is_nan());
                } else {
                    assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
                }
            }
        }
    }

    #[test]
    fn batch_tile_is_bitwise_identical_to_one_at_a_time() {
        let data = vec![
            3.5,
            -1.25,
            7.0,
            0.5,
            2.25,
            -4.0,
            9.5,
            1.0, // gene 0: clean
            10.5,
            f64::NAN,
            9.0,
            10.0,
            14.25,
            13.0,
            15.5,
            14.0, // gene 1: NA
            0.3,
            2.0,
            -1.0,
            7.0,
            0.5,
            4.0,
            2.0,
            -3.5, // gene 2: clean
        ];
        let m = Matrix::from_vec(3, 8, data).unwrap();
        let arrangements: [[u8; 8]; 4] = [
            [0, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [1, 1, 0, 0, 0, 0, 1, 1],
            [0, 1, 1, 0, 1, 0, 0, 1],
        ];
        let scorers: Vec<Box<dyn Scorer>> = vec![
            Box::new(TwoSampleScorer::<f64>::new(&m, true)),
            Box::new(TwoSampleScorer::<f64>::new(&m, false)),
            Box::new(WilcoxonScorer::<f64>::new(&m)),
            Box::new(FScorer::<f64>::new(&m, 2)),
            Box::new(PairTScorer::<f64>::new(&m)),
            Box::new(BlockFScorer::<f64>::new(&m, 2)),
        ];
        let bufs: Vec<Vec<u8>> = arrangements.iter().map(|a| a.to_vec()).collect();
        for scorer in &scorers {
            let stride = bufs.len();
            let mut scratch = scorer.make_scratch();
            scorer.warm_scratch(&mut scratch, 3);
            scorer.begin_batch(&bufs, &mut scratch);
            let mut batched = vec![f64::NAN; 3 * stride];
            // Two tiles to exercise tile boundaries.
            scorer.score_tile(&bufs, 0..2, &mut scratch, &mut batched, stride);
            scorer.score_tile(&bufs, 2..3, &mut scratch, &mut batched, stride);
            for (j, labels) in arrangements.iter().enumerate() {
                let single = stats_for(scorer.as_ref(), labels, 3);
                for g in 0..3 {
                    assert_eq!(
                        batched[g * stride + j].to_bits(),
                        single[g].to_bits(),
                        "{} gene {g} perm {j}",
                        scorer.path()
                    );
                }
            }
        }
    }

    #[test]
    fn constant_row_gives_nan_like_scalar() {
        let row = vec![5.0; 6];
        let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
        let scorer = TwoSampleScorer::<f64>::new(&m, true);
        let labels = [0u8, 0, 0, 1, 1, 1];
        assert!(stats_for(&scorer, &labels, 1)[0].is_nan());
        assert!(welch_t(&row, &labels).is_nan());
    }

    #[test]
    fn degenerate_group_sizes_give_nan() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let t = TwoSampleScorer::<f64>::new(&m, true);
        // One group-1 column: t undefined.
        assert!(stats_for(&t, &[0, 0, 0, 1], 1)[0].is_nan());
        // Wilcoxon allows 1 but not 0.
        let w = WilcoxonScorer::<f64>::new(&m);
        assert!(stats_for(&w, &[0, 0, 0, 0], 1)[0].is_nan());
        assert!(stats_for(&w, &[0, 0, 0, 1], 1)[0].is_finite());
    }

    #[test]
    fn all_na_row_scores_nan_on_the_fast_path() {
        let m = Matrix::from_vec(1, 4, vec![f64::NAN; 4]).unwrap();
        let labels = [0u8, 0, 1, 1];
        for scorer in [
            Box::new(TwoSampleScorer::<f64>::new(&m, true)) as Box<dyn Scorer>,
            Box::new(WilcoxonScorer::<f64>::new(&m)),
            Box::new(FScorer::<f64>::new(&m, 2)),
            Box::new(PairTScorer::<f64>::new(&m)),
            Box::new(BlockFScorer::<f64>::new(&m, 2)),
        ] {
            assert!(
                stats_for(scorer.as_ref(), &labels, 1)[0].is_nan(),
                "{}",
                scorer.path()
            );
        }
    }

    #[test]
    fn pivot_shift_keeps_large_offsets_stable() {
        let base = 1.0e8;
        let row: Vec<f64> = [1.0, 2.0, 3.0, 7.0, 8.0, 9.5]
            .iter()
            .map(|v| v + base)
            .collect();
        let centered: Vec<f64> = row.iter().map(|v| v - base).collect();
        let m = Matrix::from_vec(1, 6, row).unwrap();
        let scorer = TwoSampleScorer::<f64>::new(&m, true);
        let labels = [0u8, 0, 0, 1, 1, 1];
        let fast = stats_for(&scorer, &labels, 1)[0];
        let reference = welch_t(&centered, &labels);
        assert!((fast - reference).abs() < 1e-9, "{fast} vs {reference}");
    }

    #[test]
    fn tile_chunking_crosses_soa_tile_boundaries_bitwise() {
        // More genes than SOA_TILE forces multiple lane chunks inside one
        // score_tile call; results must match the per-gene path bitwise.
        let genes = SOA_TILE + 17;
        let cols = 6;
        let mut data = Vec::with_capacity(genes * cols);
        for g in 0..genes {
            for c in 0..cols {
                let v = ((g * 31 + c * 7) % 23) as f64 * 0.5 - 3.0;
                data.push(if (g + c) % 29 == 0 { f64::NAN } else { v });
            }
        }
        let m = Matrix::from_vec(genes, cols, data).unwrap();
        let labels = vec![0u8, 1, 0, 1, 0, 1];
        let scorer = TwoSampleScorer::<f64>::new(&m, true);
        let bufs = [labels.clone()];
        let mut scratch = scorer.make_scratch();
        scorer.begin_batch(&bufs, &mut scratch);
        let mut all = vec![f64::NAN; genes];
        scorer.score_tile(&bufs, 0..genes, &mut scratch, &mut all, 1);
        let single = stats_for(&scorer, &labels, genes);
        for g in 0..genes {
            assert_eq!(all[g].to_bits(), single[g].to_bits(), "gene {g}");
        }
    }
}
