//! Structure-of-arrays score tiles: the data layout and lane kernels behind
//! the fast scorers (DESIGN.md §4.10).
//!
//! The scalar layout is gene-major (`row[g][col]`): scoring one arrangement
//! walks a gather list per gene, so every add depends on the previous one and
//! the loop never vectorizes. This module transposes the cached sufficient
//! statistics into **column-major lanes** (`col[c][g]`): scoring walks the
//! selected columns in the *outer* loop and accumulates a contiguous lane of
//! genes in the *inner* loop. Each gene still sees its values in ascending
//! column order — the exact order the scalar accumulators push — so the f64
//! sums are bitwise identical to the scalar path, while the lane loop is a
//! pure independent-accumulator form the compiler autovectorizes.
//!
//! Missing cells are stored as `+0.0` in the lanes. That is bitwise-neutral:
//! an IEEE accumulator that starts at `+0.0` can never become `-0.0` by
//! adding finite values (`x + (-x) = +0.0`, `+0.0 + ±0.0 = +0.0`), so adding
//! a zeroed cell leaves the running sum's bits untouched. Counts are fixed up
//! separately via [`MissMask`]: a per-gene missing-column bitset ANDed with a
//! per-arrangement selected-column bitset, one `popcount` per dirty gene.
//!
//! Everything is generic over [`Real`] (`f64`/`f32`): the same kernels serve
//! the bitwise-exact default and the opt-in `SPRINT_PRECISION=f32` mode.

use crate::stats::scorer::{ScorerScratch, ScratchParts};

/// Lane width (elements) of the `chunks_exact` kernels. Eight elements is a
/// full AVX-512 vector of `f64` / half a vector of `f32`, and small enough
/// that the remainder loop is negligible for any tile shape.
pub const LANE: usize = 8;

/// Gene-lane sub-tile width of the SoA scorers: each `score_tile` call is cut
/// into chunks of this many genes so the lane accumulators (a few KB) stay in
/// L1 across the whole arrangement batch. Per-gene arithmetic is independent
/// of the chunk geometry, so results are bitwise identical for any value.
pub const SOA_TILE: usize = 128;

/// An accumulation element type of the SoA kernels: `f64` (reference,
/// bitwise-reproducible) or `f32` (opt-in, bounded error). The trait carries
/// exactly the operations the statistic combines use, so the generic scorer
/// code reads like the scalar formulas.
pub trait Real:
    Copy
    + Send
    + Sync
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::AddAssign
    + 'static
{
    /// Positive zero.
    const ZERO: Self;
    /// True for the reduced-precision mode (selects the `-f32` path names).
    const IS_F32: bool;

    /// Round an `f64` into this precision.
    fn from_f64(v: f64) -> Self;
    /// Widen back to `f64` (exact).
    fn to_f64(self) -> f64;
    /// Convert a count.
    fn from_usize(n: usize) -> Self;
    /// Quiet NaN.
    fn nan() -> Self;
    /// NaN test.
    fn is_nan(self) -> bool;
    /// Square root.
    fn sqrt(self) -> Self;
    /// IEEE max (NaN-discarding, like `f64::max`).
    fn max(self, other: Self) -> Self;

    /// Split the shared scratch into the per-arrangement views plus this
    /// precision's lane buffer. A single borrow-splitting accessor, so the
    /// index lists stay readable while the lanes are written.
    fn parts(scratch: &mut ScorerScratch) -> ScratchParts<'_, Self>
    where
        Self: Sized;

    /// Explicit-SIMD hook for [`lane_add`]; returns true when handled.
    #[inline]
    fn simd_add(_acc: &mut [Self], _src: &[Self]) -> bool
    where
        Self: Sized,
    {
        false
    }

    /// Explicit-SIMD hook for [`lane_add_sq`]; returns true when handled.
    #[inline]
    fn simd_add_sq(_sums: &mut [Self], _sqs: &mut [Self], _src: &[Self]) -> bool
    where
        Self: Sized,
    {
        false
    }

    /// Explicit-SIMD hook for [`lane_add_scaled`]; returns true when handled.
    #[inline]
    fn simd_add_scaled(_acc: &mut [Self], _src: &[Self], _w: Self) -> bool
    where
        Self: Sized,
    {
        false
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const IS_F32: bool = false;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_usize(n: usize) -> Self {
        n as f64
    }
    #[inline]
    fn nan() -> Self {
        f64::NAN
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }

    fn parts(scratch: &mut ScorerScratch) -> ScratchParts<'_, Self> {
        scratch.parts_f64()
    }

    #[cfg(feature = "explicit-simd")]
    #[inline]
    fn simd_add(acc: &mut [Self], src: &[Self]) -> bool {
        super::simd::add_f64(acc, src)
    }
    #[cfg(feature = "explicit-simd")]
    #[inline]
    fn simd_add_sq(sums: &mut [Self], sqs: &mut [Self], src: &[Self]) -> bool {
        super::simd::add_sq_f64(sums, sqs, src)
    }
    #[cfg(feature = "explicit-simd")]
    #[inline]
    fn simd_add_scaled(acc: &mut [Self], src: &[Self], w: Self) -> bool {
        super::simd::add_scaled_f64(acc, src, w)
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const IS_F32: bool = true;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_usize(n: usize) -> Self {
        n as f32
    }
    #[inline]
    fn nan() -> Self {
        f32::NAN
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }

    fn parts(scratch: &mut ScorerScratch) -> ScratchParts<'_, Self> {
        scratch.parts_f32()
    }

    #[cfg(feature = "explicit-simd")]
    #[inline]
    fn simd_add(acc: &mut [Self], src: &[Self]) -> bool {
        super::simd::add_f32(acc, src)
    }
    #[cfg(feature = "explicit-simd")]
    #[inline]
    fn simd_add_sq(sums: &mut [Self], sqs: &mut [Self], src: &[Self]) -> bool {
        super::simd::add_sq_f32(sums, sqs, src)
    }
    #[cfg(feature = "explicit-simd")]
    #[inline]
    fn simd_add_scaled(acc: &mut [Self], src: &[Self], w: Self) -> bool {
        super::simd::add_scaled_f32(acc, src, w)
    }
}

/// A zero-initialized buffer whose payload starts on a 64-byte (cache-line)
/// boundary, without any `unsafe`: the allocation is over-sized by one cache
/// line and the slice starts at the first aligned element.
pub(crate) struct AlignedBuf<R> {
    v: Vec<R>,
    off: usize,
    len: usize,
}

impl<R: Real> AlignedBuf<R> {
    /// Allocate `len` zeroed elements, 64-byte aligned.
    pub fn zeroed(len: usize) -> Self {
        let pad = 64 / std::mem::size_of::<R>();
        let v = vec![R::ZERO; len + pad];
        let off = v.as_ptr().align_offset(64);
        // `align_offset` is allowed to bail with usize::MAX; fall back to the
        // (correct, merely unaligned) start of the allocation.
        let off = if off > pad { 0 } else { off };
        AlignedBuf { v, off, len }
    }

    pub fn as_slice(&self) -> &[R] {
        &self.v[self.off..self.off + self.len]
    }

    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.v[self.off..self.off + self.len]
    }
}

impl<R: Real> std::fmt::Debug for AlignedBuf<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

/// Column-major gene lanes: `cols` columns of `genes` values each, every
/// column padded to a whole number of cache lines so `col(c, ..)` slices
/// start aligned. Cells default to `+0.0` — the bitwise-neutral encoding of
/// "missing" (see the module docs).
#[derive(Debug)]
pub(crate) struct SoaColumns<R: Real> {
    lanes: usize,
    buf: AlignedBuf<R>,
}

impl<R: Real> SoaColumns<R> {
    /// Allocate zeroed lanes for `genes × cols` cells.
    pub fn new(genes: usize, cols: usize) -> Self {
        let pad = 64 / std::mem::size_of::<R>();
        let lanes = genes.div_ceil(pad).max(1) * pad;
        SoaColumns {
            lanes,
            buf: AlignedBuf::zeroed(lanes * cols),
        }
    }

    /// Store one cell.
    pub fn set(&mut self, col: usize, gene: usize, v: R) {
        self.buf.as_mut_slice()[col * self.lanes + gene] = v;
    }

    /// The gene lane of one column, restricted to a gene range.
    #[inline]
    pub fn col(&self, col: usize, genes: &std::ops::Range<usize>) -> &[R] {
        let base = col * self.lanes;
        &self.buf.as_slice()[base + genes.start..base + genes.end]
    }
}

/// Per-gene missing-column bitsets plus the popcount machinery that corrects
/// group counts for dirty genes without touching the lane sums.
#[derive(Debug, Default)]
pub(crate) struct MissMask {
    /// `u64` words per gene.
    words: usize,
    /// `genes × words` bitset, gene-major; bit `c` of word `c/64` set when
    /// the gene's column `c` is missing.
    bits: Vec<u64>,
}

impl MissMask {
    /// Allocate an empty mask set.
    pub fn new(genes: usize, cols: usize) -> Self {
        let words = cols.div_ceil(64).max(1);
        MissMask {
            words,
            bits: vec![0; genes * words],
        }
    }

    /// Words per gene (= words per selection mask).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Mark column `col` of gene `gene` missing.
    pub fn set(&mut self, gene: usize, col: usize) {
        self.bits[gene * self.words + col / 64] |= 1u64 << (col % 64);
    }

    /// The bitset of one gene.
    #[inline]
    pub fn gene(&self, gene: usize) -> &[u64] {
        &self.bits[gene * self.words..(gene + 1) * self.words]
    }

    /// How many selected columns (`sel`) are missing for a gene (`miss`).
    #[inline]
    pub fn overlap(sel: &[u64], miss: &[u64]) -> usize {
        sel.iter()
            .zip(miss)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

/// Append one selected-column bitset (`labels[col] == class`) of `words`
/// words to `out`. The scorers build one mask per arrangement (per class for
/// F) in `begin_batch`, only when the data has any dirty gene.
pub(crate) fn push_sel_mask(out: &mut Vec<u64>, words: usize, labels: &[u8], class: u8) {
    let base = out.len();
    out.resize(base + words, 0);
    for (col, &l) in labels.iter().enumerate() {
        if l == class {
            out[base + col / 64] |= 1u64 << (col % 64);
        }
    }
}

/// `acc[i] += src[i]` over a gene lane.
#[inline]
pub(crate) fn lane_add<R: Real>(acc: &mut [R], src: &[R]) {
    debug_assert_eq!(acc.len(), src.len());
    #[cfg(feature = "explicit-simd")]
    if R::simd_add(acc, src) {
        return;
    }
    let mut a = acc.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for (a, s) in (&mut a).zip(&mut s) {
        for i in 0..LANE {
            a[i] += s[i];
        }
    }
    for (a, s) in a.into_remainder().iter_mut().zip(s.remainder()) {
        *a += *s;
    }
}

/// `sums[i] += src[i]; sqs[i] += src[i]²` over a gene lane — the fused
/// moment gather of the two-sample and F scorers.
#[inline]
pub(crate) fn lane_add_sq<R: Real>(sums: &mut [R], sqs: &mut [R], src: &[R]) {
    debug_assert_eq!(sums.len(), src.len());
    debug_assert_eq!(sqs.len(), src.len());
    #[cfg(feature = "explicit-simd")]
    if R::simd_add_sq(sums, sqs, src) {
        return;
    }
    let mut su = sums.chunks_exact_mut(LANE);
    let mut sq = sqs.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for ((su, sq), s) in (&mut su).zip(&mut sq).zip(&mut s) {
        for i in 0..LANE {
            let v = s[i];
            su[i] += v;
            sq[i] += v * v;
        }
    }
    for ((su, sq), s) in su
        .into_remainder()
        .iter_mut()
        .zip(sq.into_remainder())
        .zip(s.remainder())
    {
        let v = *s;
        *su += v;
        *sq += v * v;
    }
}

/// `acc[i] += w·src[i]` over a gene lane — the sign-broadcast kernel of the
/// gather-free paired-t path (`w = ±1`).
#[inline]
pub(crate) fn lane_add_scaled<R: Real>(acc: &mut [R], src: &[R], w: R) {
    debug_assert_eq!(acc.len(), src.len());
    #[cfg(feature = "explicit-simd")]
    if R::simd_add_scaled(acc, src, w) {
        return;
    }
    let mut a = acc.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for (a, s) in (&mut a).zip(&mut s) {
        for i in 0..LANE {
            a[i] += w * s[i];
        }
    }
    for (a, s) in a.into_remainder().iter_mut().zip(s.remainder()) {
        *a += w * *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_cache_line_aligned_and_zeroed() {
        for len in [0usize, 1, 7, 64, 129] {
            let buf = AlignedBuf::<f64>::zeroed(len);
            let s = buf.as_slice();
            assert_eq!(s.len(), len);
            assert!(s.iter().all(|v| v.to_bits() == 0));
            if len > 0 {
                assert_eq!(s.as_ptr() as usize % 64, 0, "len={len}");
            }
        }
        let buf = AlignedBuf::<f32>::zeroed(33);
        assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn soa_columns_round_trip_and_align() {
        let mut soa = SoaColumns::<f64>::new(13, 3);
        for c in 0..3 {
            for g in 0..13 {
                soa.set(c, g, (c * 100 + g) as f64);
            }
        }
        for c in 0..3 {
            let lane = soa.col(c, &(0..13));
            assert_eq!(lane.len(), 13);
            assert_eq!(lane.as_ptr() as usize % 64, 0, "col {c}");
            for (g, &v) in lane.iter().enumerate() {
                assert_eq!(v, (c * 100 + g) as f64);
            }
        }
        // Sub-ranges slice the same lane.
        assert_eq!(soa.col(1, &(5..8)), &[105.0, 106.0, 107.0]);
    }

    #[test]
    fn miss_mask_popcounts_selected_missing_columns() {
        let mut miss = MissMask::new(2, 70);
        miss.set(0, 3);
        miss.set(0, 65);
        miss.set(1, 0);
        let mut labels = vec![0u8; 70];
        labels[3] = 1;
        labels[64] = 1;
        labels[65] = 1;
        let mut sel = Vec::new();
        push_sel_mask(&mut sel, miss.words(), &labels, 1);
        assert_eq!(sel.len(), 2);
        assert_eq!(MissMask::overlap(&sel, miss.gene(0)), 2);
        assert_eq!(MissMask::overlap(&sel, miss.gene(1)), 0);
    }

    #[test]
    fn lane_kernels_match_scalar_loops_including_remainders() {
        // Lengths straddling the chunks_exact boundary exercise remainders.
        for len in [1usize, 7, 8, 9, 16, 19] {
            let src: Vec<f64> = (0..len).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut acc = vec![1.0; len];
            lane_add(&mut acc, &src);
            let mut sums = vec![0.25; len];
            let mut sqs = vec![0.5; len];
            lane_add_sq(&mut sums, &mut sqs, &src);
            let mut scaled = vec![2.0; len];
            lane_add_scaled(&mut scaled, &src, -1.0);
            for i in 0..len {
                assert_eq!(acc[i].to_bits(), (1.0 + src[i]).to_bits());
                assert_eq!(sums[i].to_bits(), (0.25 + src[i]).to_bits());
                assert_eq!(sqs[i].to_bits(), (0.5 + src[i] * src[i]).to_bits());
                #[allow(clippy::neg_multiply)]
                let want = 2.0 + -1.0 * src[i];
                assert_eq!(scaled[i].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn zero_cells_are_bitwise_neutral_in_running_sums() {
        // The lemma the SoA layout rests on: adding ±0.0 to an accumulator
        // that started at +0.0 never flips it to -0.0, so zeroed missing
        // cells cannot perturb any sum bit.
        let mut acc = [0.0f64, 3.5, -3.5];
        let zeros = [0.0f64, 0.0, -0.0];
        lane_add(&mut acc, &zeros);
        assert_eq!(acc[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(acc[1].to_bits(), 3.5f64.to_bits());
        assert_eq!(acc[2].to_bits(), (-3.5f64).to_bits());
        // x + (-x) lands on +0.0, not -0.0.
        let mut acc = [2.5f64];
        lane_add(&mut acc, &[-2.5]);
        assert_eq!(acc[0].to_bits(), 0.0f64.to_bits());
    }
}
