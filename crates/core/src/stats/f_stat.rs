//! One-way ANOVA F-statistic over k classes (`test = "f"`).

use super::moments::{pivot_of, GroupSums};
use super::soa::Real;

/// Maximum number of classes kept in the stack-allocated fast path.
const STACK_CLASSES: usize = 8;

/// F from the between/within sums of squares, mirroring the final combine of
/// [`oneway_f`] operation for operation. The caller handles the `n <= k` and
/// empty-class guards.
#[inline]
pub(crate) fn f_from_sums<R: Real>(k: usize, n: usize, ss_between: R, ss_within: R) -> R {
    let df_between = R::from_usize(k - 1);
    let df_within = R::from_usize(n - k);
    let ms_within = ss_within / df_within;
    if ms_within <= R::ZERO {
        return R::nan();
    }
    (ss_between / df_between) / ms_within
}

/// One-way F: `(SS_between/(k−1)) / (SS_within/(N−k))`, NA-aware.
///
/// `k` is the number of classes in the design (labels are `0..k`). Returns
/// `NaN` when any class is empty after NA exclusion, when error degrees of
/// freedom vanish, or when the within-group variance is zero.
pub fn oneway_f(row: &[f64], labels: &[u8], k: usize) -> f64 {
    debug_assert_eq!(row.len(), labels.len());
    debug_assert!(k >= 2);
    let pivot = pivot_of(row);
    let mut stack = [GroupSums::default(); STACK_CLASSES];
    let mut heap;
    let groups: &mut [GroupSums] = if k <= STACK_CLASSES {
        &mut stack[..k]
    } else {
        heap = vec![GroupSums::default(); k];
        &mut heap
    };
    let mut total = GroupSums::default();
    for (&v, &l) in row.iter().zip(labels) {
        if !v.is_nan() {
            let shifted = v - pivot;
            groups[l as usize].push(shifted);
            total.push(shifted);
        }
    }
    let n = total.n;
    if n <= k {
        return f64::NAN;
    }
    let grand_mean = total.mean();
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups.iter() {
        if g.n == 0 {
            return f64::NAN;
        }
        let d = g.mean() - grand_mean;
        ss_between += g.n as f64 * d * d;
        ss_within += g.ss();
    }
    let df_between = (k - 1) as f64;
    let df_within = (n - k) as f64;
    let ms_within = ss_within / df_within;
    if ms_within <= 0.0 {
        return f64::NAN;
    }
    (ss_between / df_between) / ms_within
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn hand_computed_three_groups() {
        // Groups [1,2], [4,6], [5,9]: SSB = 31, SSW = 10.5,
        // F = (31/2)/(10.5/3) = 4.428571428…
        let row = [1.0, 2.0, 4.0, 6.0, 5.0, 9.0];
        let labels = [0, 0, 1, 1, 2, 2];
        assert!((oneway_f(&row, &labels, 3) - 31.0 / 7.0).abs() < TOL);
    }

    #[test]
    fn two_group_f_equals_equalvar_t_squared() {
        // Classic identity: F(1, n−2) = t².
        let row = [1.0, 2.0, 4.0, 5.0, 6.0];
        let labels = [0, 0, 1, 1, 1];
        let f = oneway_f(&row, &labels, 2);
        let t = super::super::two_sample::equalvar_t(&row, &labels);
        assert!((f - t * t).abs() < 1e-8, "F={f} t²={}", t * t);
    }

    #[test]
    fn na_exclusion() {
        let row = [1.0, 2.0, f64::NAN, 4.0, 6.0, 5.0, 9.0];
        let labels = [0, 0, 0, 1, 1, 2, 2];
        let clean = oneway_f(&[1.0, 2.0, 4.0, 6.0, 5.0, 9.0], &[0, 0, 1, 1, 2, 2], 3);
        assert!((oneway_f(&row, &labels, 3) - clean).abs() < TOL);
    }

    #[test]
    fn emptied_class_gives_nan() {
        // Class 2's only observation is missing.
        let row = [1.0, 2.0, 4.0, 6.0, f64::NAN];
        let labels = [0, 0, 1, 1, 2];
        assert!(oneway_f(&row, &labels, 3).is_nan());
    }

    #[test]
    fn zero_within_variance_gives_nan() {
        let row = [1.0, 1.0, 2.0, 2.0];
        let labels = [0, 0, 1, 1];
        assert!(oneway_f(&row, &labels, 2).is_nan());
    }

    #[test]
    fn f_is_nonnegative() {
        let row = [0.5, -1.0, 2.0, 0.0, 3.0, -2.0, 1.0, 4.0];
        let labels = [0, 1, 2, 3, 0, 1, 2, 3];
        let f = oneway_f(&row, &labels, 4);
        assert!(f.is_nan() || f >= 0.0);
    }

    #[test]
    fn many_classes_heap_path() {
        // k > STACK_CLASSES exercises the heap-allocated path.
        let k = 12;
        let mut row = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k as u8 {
            row.push(c as f64);
            row.push(c as f64 + 0.5);
            labels.push(c);
            labels.push(c);
        }
        let f = oneway_f(&row, &labels, k);
        assert!(f.is_finite() && f > 0.0);
    }

    #[test]
    fn translation_invariance() {
        let row = [1.0, 2.0, 4.0, 6.0, 5.0, 9.0];
        let shifted: Vec<f64> = row.iter().map(|v| v + 5.0e6).collect();
        let labels = [0, 0, 1, 1, 2, 2];
        let a = oneway_f(&row, &labels, 3);
        let b = oneway_f(&shifted, &labels, 3);
        assert!((a - b).abs() < 1e-6);
    }
}
