//! Midranks (ties share the average rank), with missing values preserved.
//!
//! Used twice: the Wilcoxon statistic works on per-row ranks, and the
//! `nonpara = "y"` option rank-transforms every row before any statistic.
//! Crucially, ranks depend only on the *data*, never on the labels, so the
//! transform is applied once up front and the per-permutation kernel works on
//! the transformed matrix — the same optimization the `multtest` C code uses.

/// Replace `row` by the midranks of its non-missing values (1-based).
/// Missing (`NaN`) cells stay missing and do not consume ranks.
pub fn midranks_in_place(row: &mut [f64], scratch: &mut Vec<usize>) {
    scratch.clear();
    scratch.extend((0..row.len()).filter(|&i| !row[i].is_nan()));
    // Sort present indices by value; NaNs were excluded so the comparator is
    // total on this subset.
    scratch.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("no NaN present"));
    let mut i = 0;
    while i < scratch.len() {
        // Find the tie run [i, j).
        let mut j = i + 1;
        while j < scratch.len() && row[scratch[j]] == row[scratch[i]] {
            j += 1;
        }
        // Midrank of positions i..j (1-based ranks i+1 ..= j).
        let mid = (i + 1 + j) as f64 / 2.0;
        for &idx in &scratch[i..j] {
            row[idx] = mid;
        }
        i = j;
    }
}

/// Convenience: return the midranks of `values` as a new vector.
pub fn midranks(values: &[f64]) -> Vec<f64> {
    let mut out = values.to_vec();
    let mut scratch = Vec::new();
    midranks_in_place(&mut out, &mut scratch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values_get_ordinal_ranks() {
        assert_eq!(midranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_share_the_average_rank() {
        // Values 5,1,5 → ranks for the two 5s are (2+3)/2 = 2.5.
        assert_eq!(midranks(&[5.0, 1.0, 5.0]), vec![2.5, 1.0, 2.5]);
        // All equal → everyone gets (1+n)/2.
        assert_eq!(midranks(&[7.0; 4]), vec![2.5; 4]);
    }

    #[test]
    fn nan_preserved_and_skipped() {
        let r = midranks(&[3.0, f64::NAN, 1.0, 2.0]);
        assert!(r[1].is_nan());
        assert_eq!(r[0], 3.0);
        assert_eq!(r[2], 1.0);
        assert_eq!(r[3], 2.0);
    }

    #[test]
    fn rank_sum_is_preserved() {
        // Sum of midranks over present values must equal n(n+1)/2.
        let vals = [2.0, 2.0, 9.0, 1.0, 2.0, 9.0];
        let r = midranks(&vals);
        let sum: f64 = r.iter().sum();
        let n = vals.len() as f64;
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_nan_rows() {
        assert_eq!(midranks(&[]), Vec::<f64>::new());
        let r = midranks(&[f64::NAN, f64::NAN]);
        assert!(r.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn negative_and_subnormal_values_ordered_correctly() {
        let r = midranks(&[-1.0, -3.0, 0.0, 1e-310]);
        assert_eq!(r, vec![2.0, 1.0, 3.0, 4.0]);
    }
}
