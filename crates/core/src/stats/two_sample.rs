//! Two-sample t statistics: Welch (unequal variances) and pooled variance.
//!
//! Sign convention: the numerator is `mean(group 1) − mean(group 0)`; the
//! permutation test is invariant to the convention, but raw statistics are
//! part of the public result so it is fixed and documented here.

use super::moments::{pivot_of, GroupSums};
use super::soa::Real;

/// Accumulate group sums for a row under the given labels, with NA exclusion
/// and pivot shifting. Returns `(g0, g1)`.
#[inline]
pub(crate) fn group_sums(row: &[f64], labels: &[u8]) -> (GroupSums, GroupSums) {
    debug_assert_eq!(row.len(), labels.len());
    let pivot = pivot_of(row);
    let mut g = [GroupSums::default(), GroupSums::default()];
    for (&v, &l) in row.iter().zip(labels) {
        if !v.is_nan() {
            g[l as usize].push(v - pivot);
        }
    }
    (g[0], g[1])
}

/// Welch two-sample t (`test = "t"`): `(m1 − m0) / sqrt(s1²/n1 + s0²/n0)`.
/// `NaN` when either group has fewer than two present values or both
/// variances vanish.
pub fn welch_t(row: &[f64], labels: &[u8]) -> f64 {
    let (g0, g1) = group_sums(row, labels);
    if g0.n < 2 || g1.n < 2 {
        return f64::NAN;
    }
    let se2 = g1.variance() / g1.n as f64 + g0.variance() / g0.n as f64;
    if se2 <= 0.0 {
        return f64::NAN;
    }
    (g1.mean() - g0.mean()) / se2.sqrt()
}

/// Pooled-variance two-sample t (`test = "t.equalvar"`).
pub fn equalvar_t(row: &[f64], labels: &[u8]) -> f64 {
    let (g0, g1) = group_sums(row, labels);
    if g0.n < 2 || g1.n < 2 {
        return f64::NAN;
    }
    let n0 = g0.n as f64;
    let n1 = g1.n as f64;
    let pooled = (g0.ss() + g1.ss()) / (n0 + n1 - 2.0);
    let se2 = pooled * (1.0 / n0 + 1.0 / n1);
    if se2 <= 0.0 {
        return f64::NAN;
    }
    (g1.mean() - g0.mean()) / se2.sqrt()
}

/// Welch t from group moments (n, Σx, Σx²), mirroring [`welch_t`] +
/// `GroupSums::variance` operation for operation (same clamps and guards).
/// Generic over the accumulation precision; at `f64` the sequence is
/// bit-for-bit the scalar one.
#[inline]
pub(crate) fn welch_from_moments<R: Real>(n0: R, s0: R, q0: R, n1: R, s1: R, q1: R) -> R {
    let one = R::from_f64(1.0);
    let v1 = ((q1 - s1 * s1 / n1) / (n1 - one)).max(R::ZERO);
    let v0 = ((q0 - s0 * s0 / n0) / (n0 - one)).max(R::ZERO);
    let se2 = v1 / n1 + v0 / n0;
    if se2 <= R::ZERO {
        return R::nan();
    }
    (s1 / n1 - s0 / n0) / se2.sqrt()
}

/// Pooled-variance t from group moments, mirroring [`equalvar_t`] +
/// `GroupSums::ss` operation for operation.
#[inline]
pub(crate) fn equalvar_from_moments<R: Real>(n0: R, s0: R, q0: R, n1: R, s1: R, q1: R) -> R {
    let one = R::from_f64(1.0);
    let ss0 = (q0 - s0 * s0 / n0).max(R::ZERO);
    let ss1 = (q1 - s1 * s1 / n1).max(R::ZERO);
    let pooled = (ss0 + ss1) / (n0 + n1 - R::from_f64(2.0));
    let se2 = pooled * (one / n0 + one / n1);
    if se2 <= R::ZERO {
        return R::nan();
    }
    (s1 / n1 - s0 / n0) / se2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn welch_hand_computed() {
        // g0 = [1,2,3], g1 = [4,5,7]:
        // m0 = 2, m1 = 16/3; s0² = 1, s1² = 7/3;
        // t = (10/3) / sqrt(7/9 + 1/3) = sqrt(10) ≈ 3.16227766.
        let row = [1.0, 2.0, 3.0, 4.0, 5.0, 7.0];
        let labels = [0, 0, 0, 1, 1, 1];
        assert!((welch_t(&row, &labels) - 10f64.sqrt()).abs() < TOL);
    }

    #[test]
    fn welch_vs_equalvar_differ_for_unbalanced_groups() {
        // g0 = [1,2], g1 = [4,5,6]:
        // Welch: 3.5/sqrt(0.25 + 1/3) = 4.582575695;
        // equalvar: sp² = 2.5/3, t = 3.5/sqrt(sp²·(1/2+1/3)) = 4.2.
        let row = [1.0, 2.0, 4.0, 5.0, 6.0];
        let labels = [0, 0, 1, 1, 1];
        assert!((welch_t(&row, &labels) - 4.58257569495584).abs() < TOL);
        assert!((equalvar_t(&row, &labels) - 4.2).abs() < TOL);
    }

    #[test]
    fn sign_convention_group1_minus_group0() {
        let row = [10.0, 10.0, 1.0, 1.0];
        // group1 smaller → negative statistic (needs nonzero variance).
        let row = [row[0], row[1] + 0.1, row[2], row[3] + 0.1];
        let labels = [0, 0, 1, 1];
        assert!(welch_t(&row, &labels) < 0.0);
        assert!(equalvar_t(&row, &labels) < 0.0);
    }

    #[test]
    fn label_permutation_changes_statistic() {
        let row = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let a = welch_t(&row, &[0, 0, 0, 1, 1, 1]);
        let b = welch_t(&row, &[1, 0, 0, 0, 1, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn na_values_are_excluded() {
        let row = [1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0, f64::NAN];
        let labels = [0, 0, 0, 1, 1, 1, 1];
        // Equivalent to g0 = [1,2], g1 = [4,5,6].
        let clean_row = [1.0, 2.0, 4.0, 5.0, 6.0];
        let clean_labels = [0, 0, 1, 1, 1];
        assert!((welch_t(&row, &labels) - welch_t(&clean_row, &clean_labels)).abs() < TOL);
        assert!((equalvar_t(&row, &labels) - equalvar_t(&clean_row, &clean_labels)).abs() < TOL);
    }

    #[test]
    fn too_few_observations_give_nan() {
        // After NA exclusion group 1 has one value.
        let row = [1.0, 2.0, 3.0, f64::NAN];
        let labels = [0, 0, 1, 1];
        assert!(welch_t(&row, &labels).is_nan());
        assert!(equalvar_t(&row, &labels).is_nan());
    }

    #[test]
    fn zero_variance_rows_give_nan() {
        let row = [5.0; 6];
        let labels = [0, 0, 0, 1, 1, 1];
        assert!(welch_t(&row, &labels).is_nan());
        assert!(equalvar_t(&row, &labels).is_nan());
    }

    #[test]
    fn translation_invariance() {
        // Adding a constant to every value must not change t.
        let row = [1.0, 2.0, 3.0, 4.0, 5.0, 7.0];
        let shifted: Vec<f64> = row.iter().map(|v| v + 1.0e7).collect();
        let labels = [0, 0, 0, 1, 1, 1];
        let a = welch_t(&row, &labels);
        let b = welch_t(&shifted, &labels);
        assert!((a - b).abs() < 1e-6, "a={a} b={b}");
    }

    #[test]
    fn scale_invariance() {
        // Multiplying by a positive constant must not change t.
        let row = [1.0, 2.0, 3.0, 4.0, 5.0, 7.0];
        let scaled: Vec<f64> = row.iter().map(|v| v * 1000.0).collect();
        let labels = [0, 0, 0, 1, 1, 1];
        assert!((welch_t(&row, &labels) - welch_t(&scaled, &labels)).abs() < TOL);
        assert!((equalvar_t(&row, &labels) - equalvar_t(&scaled, &labels)).abs() < TOL);
    }
}
