//! Standardized Wilcoxon rank-sum statistic (`test = "wilcoxon"`).
//!
//! The row is expected to be **already rank-transformed** (see
//! [`super::prepare_matrix`]): ranks depend only on the data, so they are
//! computed once, and each permutation only re-sums them by group —
//! the same optimization as the `multtest` C implementation.
//!
//! Statistic: `(W − n1(n+1)/2) / sqrt(n0·n1·(n+1)/12)` where `W` is the rank
//! sum of group 1 and `n = n0 + n1` counts the non-missing cells. Ties were
//! given midranks by the transform; the variance term uses the classic
//! no-tie-correction form, matching `multtest`.

use super::soa::Real;

/// Standardized rank sum from the group counts and the group-1 rank sum,
/// mirroring the combine of [`wilcoxon_from_ranks`] operation for operation.
/// The caller handles the `n0 == 0 || n1 == 0` guard.
#[inline]
pub(crate) fn wilcoxon_from_counts<R: Real>(n0: usize, n1: usize, w: R) -> R {
    let one = R::from_f64(1.0);
    let n = R::from_usize(n0 + n1);
    let expect = R::from_usize(n1) * (n + one) / R::from_f64(2.0);
    let var = R::from_usize(n0) * R::from_usize(n1) * (n + one) / R::from_f64(12.0);
    if var <= R::ZERO {
        return R::nan();
    }
    (w - expect) / var.sqrt()
}

/// Compute the standardized rank sum from a rank-transformed row.
pub fn wilcoxon_from_ranks(ranks: &[f64], labels: &[u8]) -> f64 {
    debug_assert_eq!(ranks.len(), labels.len());
    let mut n0 = 0usize;
    let mut n1 = 0usize;
    let mut w = 0.0f64;
    for (&r, &l) in ranks.iter().zip(labels) {
        if r.is_nan() {
            continue;
        }
        if l == 1 {
            n1 += 1;
            w += r;
        } else {
            n0 += 1;
        }
    }
    if n0 == 0 || n1 == 0 {
        return f64::NAN;
    }
    let n = (n0 + n1) as f64;
    let expect = n1 as f64 * (n + 1.0) / 2.0;
    let var = n0 as f64 * n1 as f64 * (n + 1.0) / 12.0;
    if var <= 0.0 {
        return f64::NAN;
    }
    (w - expect) / var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ranks::midranks;

    const TOL: f64 = 1e-9;

    #[test]
    fn hand_computed_no_ties() {
        // Values 1..6 with group 1 = last three: W = 4+5+6 = 15,
        // E = 3·7/2 = 10.5, V = 9·7/12 = 5.25 → z = 4.5/√5.25 ≈ 1.96396101.
        let ranks = midranks(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let labels = [0, 0, 0, 1, 1, 1];
        assert!((wilcoxon_from_ranks(&ranks, &labels) - 1.9639610121239315).abs() < TOL);
    }

    #[test]
    fn symmetric_labels_negate() {
        let ranks = midranks(&[3.0, 1.0, 4.0, 1.5, 5.0, 9.0]);
        let a = wilcoxon_from_ranks(&ranks, &[0, 0, 0, 1, 1, 1]);
        let b = wilcoxon_from_ranks(&ranks, &[1, 1, 1, 0, 0, 0]);
        assert!((a + b).abs() < TOL, "swapping groups must flip the sign");
    }

    #[test]
    fn monotone_transform_invariance() {
        // Wilcoxon depends only on the ordering of the data.
        let data = [0.3f64, 2.0, -1.0, 7.0, 0.5, 4.0];
        let transformed: Vec<f64> = data.iter().map(|&v| v.exp()).collect();
        let labels = [0, 1, 0, 1, 0, 1];
        let a = wilcoxon_from_ranks(&midranks(&data), &labels);
        let b = wilcoxon_from_ranks(&midranks(&transformed), &labels);
        assert!((a - b).abs() < TOL);
    }

    #[test]
    fn na_cells_do_not_count() {
        let data = [1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0];
        let labels = [0, 0, 0, 1, 1, 1];
        let with_na = wilcoxon_from_ranks(&midranks(&data), &labels);
        let clean = wilcoxon_from_ranks(&midranks(&[1.0, 2.0, 4.0, 5.0, 6.0]), &[0, 0, 1, 1, 1]);
        assert!((with_na - clean).abs() < TOL);
    }

    #[test]
    fn empty_group_gives_nan() {
        let ranks = midranks(&[1.0, 2.0, 3.0]);
        assert!(wilcoxon_from_ranks(&ranks, &[0, 0, 0]).is_nan());
        // All of group 1's cells missing.
        let ranks2 = [1.0, 2.0, f64::NAN];
        assert!(wilcoxon_from_ranks(&ranks2, &[0, 0, 1]).is_nan());
    }

    #[test]
    fn balanced_extreme_split_is_maximal() {
        // Group 1 holding the top half of the ranks maximizes the statistic
        // over label arrangements of the same sizes.
        let ranks = midranks(&[10.0, 20.0, 30.0, 40.0]);
        let max = wilcoxon_from_ranks(&ranks, &[0, 0, 1, 1]);
        for labels in [
            [0, 1, 0, 1],
            [0, 1, 1, 0],
            [1, 0, 0, 1],
            [1, 0, 1, 0],
            [1, 1, 0, 0],
        ] {
            assert!(wilcoxon_from_ranks(&ranks, &labels) <= max + TOL);
        }
    }
}
