//! Correlation/association statistic (`test = "corr"`): Pearson correlation
//! of a gene row against the numeric class codes, in the spirit of
//! PERMUTOOLS' `permutest` correlation mode. Permuting the labels permutes
//! the `y` vector, so the statistic slots straight into the maxT machinery:
//! larger |r| means stronger association, and the null distribution comes
//! from the same label-shuffle stream as the other methods.
//!
//! NA handling matches the rest of the statistics: NaN samples drop out of
//! every accumulator (pairwise-complete), and degenerate rows (< 3 complete
//! samples, or zero variance on either side) return NaN so the maxT layer
//! can skip them.

/// Pearson correlation of `row` against the class codes in `labels`.
///
/// Returns NaN when fewer than 3 complete samples remain or either side has
/// zero variance.
#[inline]
pub fn pearson_corr(row: &[f64], labels: &[u8]) -> f64 {
    debug_assert_eq!(row.len(), labels.len());
    let mut n = 0u32;
    let (mut sx, mut sxx, mut sy, mut syy, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (&x, &c) in row.iter().zip(labels) {
        if x.is_nan() {
            continue;
        }
        let y = c as f64;
        n += 1;
        sx += x;
        sxx += x * x;
        sy += y;
        syy += y * y;
        sxy += x * y;
    }
    if n < 3 {
        return f64::NAN;
    }
    let nf = n as f64;
    let cov = nf * sxy - sx * sy;
    let vx = nf * sxx - sx * sx;
    let vy = nf * syy - sy * sy;
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_association_is_unit() {
        let labels = [0u8, 0, 1, 1, 2, 2];
        let row: Vec<f64> = labels.iter().map(|&c| 2.0 * c as f64 + 1.0).collect();
        assert!((pearson_corr(&row, &labels) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = labels.iter().map(|&c| -3.0 * c as f64).collect();
        assert!((pearson_corr(&neg, &labels) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_textbook_formula() {
        let row = [2.0, 4.0, 5.0, 4.0, 7.0, 8.0];
        let labels = [0u8, 0, 0, 1, 1, 1];
        let r = pearson_corr(&row, &labels);
        // Hand computation: x̄=5, ȳ=0.5; Σ(x−x̄)(y−ȳ)=4; Σ(x−x̄)²=24; Σ(y−ȳ)²=1.5
        let expect = 4.0 / (24.0f64 * 1.5).sqrt();
        assert!((r - expect).abs() < 1e-12, "{r} vs {expect}");
    }

    #[test]
    fn nan_samples_drop_out_pairwise() {
        let full = pearson_corr(&[1.0, 2.0, 5.0, 6.0], &[0, 0, 1, 1]);
        let with_nan = pearson_corr(&[1.0, 2.0, f64::NAN, 5.0, 6.0], &[0, 0, 0, 1, 1]);
        let trimmed = pearson_corr(&[1.0, 2.0, 5.0, 6.0], &[0, 0, 1, 1]);
        assert_eq!(with_nan.to_bits(), trimmed.to_bits());
        assert!(full.is_finite());
    }

    #[test]
    fn degenerate_rows_are_nan() {
        // Too few complete samples.
        assert!(pearson_corr(&[1.0, f64::NAN, 2.0, f64::NAN], &[0, 0, 1, 1]).is_nan());
        // Constant row: zero variance.
        assert!(pearson_corr(&[3.0, 3.0, 3.0, 3.0], &[0, 0, 1, 1]).is_nan());
        // Constant labels after NA removal: zero variance on y.
        assert!(pearson_corr(&[1.0, 2.0, 3.0, f64::NAN], &[0, 0, 0, 1]).is_nan());
    }

    #[test]
    fn label_permutation_changes_only_y_pairing() {
        let row = [1.0, 2.0, 3.0, 4.0];
        let a = pearson_corr(&row, &[0, 0, 1, 1]);
        let b = pearson_corr(&row, &[1, 1, 0, 0]);
        assert!((a + b).abs() < 1e-12, "sign flips under label swap");
    }
}
