//! Sufficient-statistic fast kernel for the two-sample permutation hot loop.
//!
//! The scalar path recomputes every statistic from a full O(n) sweep over the
//! gene row for each permutation, branching on the label of every column. For
//! the two-sample statistics this is redundant: the per-row totals
//! S = Σ(x−pivot) and Q = Σ(x−pivot)² never change across permutations, so
//! they are cached once here, and each permutation only needs the group-1
//! partials s₁ = Σ_{j∈G₁} x_j and q₁ = Σ_{j∈G₁} x_j² — an O(n₁) branch-free
//! indexed gather — with the group-0 side recovered as s₀ = S−s₁, q₀ = Q−q₁.
//! The statistic then follows in O(1) from the four moments. For Wilcoxon the
//! rows are already midranks, so s₁ *is* the rank sum W and no squares are
//! needed.
//!
//! ## Numerical-equivalence policy
//!
//! The fast path is not asked to be approximately right — it is constructed
//! so that exceedance *counts* (the integers the p-values are made of) match
//! the scalar path:
//!
//! - group-1 partials are gathered in ascending column order, which is the
//!   exact order the scalar path pushes group-1 values, so `s₁`/`q₁` are
//!   **bitwise identical** to the scalar accumulators, and the Wilcoxon
//!   statistic (a pure function of `s₁` and the group sizes) is bitwise
//!   identical end to end;
//! - only the subtraction `S−s₁`/`Q−q₁` re-associates the group-0 sums, an
//!   error of a few ulps; the statistic formulas below mirror the scalar
//!   operation sequence (same literals, same clamps, same guards) so the
//!   final score differs from the scalar score by ulps at most;
//! - the maxT count comparisons carry an absolute slack of
//!   [`crate::maxt::EPSILON`] = 1e-10, orders of magnitude above ulp noise on
//!   t-scale statistics, so the counts agree;
//! - observed statistics are computed through the *same* dispatch as the
//!   permuted ones, so the identity permutation compares a value against
//!   itself and always counts, whichever kernel is active.
//!
//! Rows containing missing values change their group sizes under
//! permutation and keep the scalar path (see [`FastKernel::scalar_genes`]);
//! the f/pairt/blockf methods have no fast form and [`FastKernel::build`]
//! returns `None` for them.

use crate::matrix::Matrix;
use crate::options::TestMethod;

/// Precomputed sufficient statistics for the NA-free rows of a prepared
/// matrix, plus the row partition into fast and scalar-fallback genes.
#[derive(Debug, Clone)]
pub struct FastKernel {
    method: TestMethod,
    cols: usize,
    /// Gene indices served by the fast path, ascending.
    fast_genes: Vec<usize>,
    /// Gene indices that must stay on the scalar path (rows with NA).
    scalar_genes: Vec<usize>,
    /// Pivot-shifted row values (raw midranks for Wilcoxon), row-major over
    /// `fast_genes`.
    values: Vec<f64>,
    /// Per fast row: S = Σ values.
    total_sum: Vec<f64>,
    /// Per fast row: Q = Σ values² (t statistics only; empty for Wilcoxon).
    total_sumsq: Vec<f64>,
}

impl FastKernel {
    /// Cache sufficient statistics for `data` (a **prepared** matrix — ranks
    /// already applied for Wilcoxon/nonpara). Returns `None` when `method`
    /// has no fast form or when no row is NA-free.
    pub fn build(data: &Matrix, method: TestMethod) -> Option<FastKernel> {
        let needs_moments = match method {
            TestMethod::T | TestMethod::TEqualVar => true,
            TestMethod::Wilcoxon => false,
            TestMethod::F | TestMethod::PairT | TestMethod::BlockF => return None,
        };
        let cols = data.cols();
        if cols == 0 {
            return None;
        }
        let mut fast_genes = Vec::new();
        let mut scalar_genes = Vec::new();
        for g in 0..data.rows() {
            if data.row(g).iter().any(|v| v.is_nan()) {
                scalar_genes.push(g);
            } else {
                fast_genes.push(g);
            }
        }
        if fast_genes.is_empty() {
            return None;
        }
        let mut values = Vec::with_capacity(fast_genes.len() * cols);
        let mut total_sum = Vec::with_capacity(fast_genes.len());
        let mut total_sumsq = Vec::with_capacity(if needs_moments { fast_genes.len() } else { 0 });
        for &g in &fast_genes {
            let row = data.row(g);
            // The scalar path shifts every value by the row's first
            // non-missing value (`pivot_of`) before squaring; for an NA-free
            // row that is row[0]. Wilcoxon rows are midranks summed
            // unshifted, exactly as `wilcoxon_from_ranks` does.
            let pivot = if needs_moments { row[0] } else { 0.0 };
            let mut s = 0.0;
            let mut q = 0.0;
            for &v in row {
                let x = v - pivot;
                values.push(x);
                s += x;
                if needs_moments {
                    q += x * x;
                }
            }
            total_sum.push(s);
            if needs_moments {
                total_sumsq.push(q);
            }
        }
        Some(FastKernel {
            method,
            cols,
            fast_genes,
            scalar_genes,
            values,
            total_sum,
            total_sumsq,
        })
    }

    /// Genes the fast path serves.
    pub fn fast_genes(&self) -> &[usize] {
        &self.fast_genes
    }

    /// Genes left to the scalar path (rows with missing values).
    pub fn scalar_genes(&self) -> &[usize] {
        &self.scalar_genes
    }

    /// Collect the group-1 column indices of a label arrangement into `idx`,
    /// ascending — the once-per-permutation O(n) step.
    pub fn group1_indices(labels: &[u8], idx: &mut Vec<usize>) {
        idx.clear();
        for (j, &l) in labels.iter().enumerate() {
            if l == 1 {
                idx.push(j);
            }
        }
    }

    /// Batched variant of [`FastKernel::stats_into`] for the engine's
    /// gene-tiled hot loop: compute the statistics of the fast genes at
    /// positions `fast_range` (indices into [`FastKernel::fast_genes`]) for
    /// **every** permutation in `idx_lists`, writing gene-major into
    /// `out[g * stride + j]` for permutation `j`.
    ///
    /// Iterating genes in the outer loop keeps each cached row hot in L1
    /// across the whole batch. Per (gene, permutation) the operation sequence
    /// — gather order, guards, formula literals — is exactly that of
    /// `stats_into`, so the produced values are bitwise identical to a
    /// one-permutation-at-a-time evaluation.
    pub fn stats_batch_into(
        &self,
        idx_lists: &[Vec<usize>],
        fast_range: std::ops::Range<usize>,
        out: &mut [f64],
        stride: usize,
    ) {
        debug_assert!(idx_lists.len() <= stride);
        let cols = self.cols;
        match self.method {
            TestMethod::T | TestMethod::TEqualVar => {
                let welch = self.method == TestMethod::T;
                for fi in fast_range {
                    let g = self.fast_genes[fi];
                    let row = &self.values[fi * cols..(fi + 1) * cols];
                    let s = self.total_sum[fi];
                    let q = self.total_sumsq[fi];
                    let slots = &mut out[g * stride..g * stride + idx_lists.len()];
                    for (slot, idx) in slots.iter_mut().zip(idx_lists) {
                        let n1 = idx.len();
                        let n0 = cols - n1;
                        if n0 < 2 || n1 < 2 {
                            *slot = f64::NAN;
                            continue;
                        }
                        let mut s1 = 0.0;
                        let mut q1 = 0.0;
                        for &j in idx {
                            let v = row[j];
                            s1 += v;
                            q1 += v * v;
                        }
                        let s0 = s - s1;
                        let q0 = q - q1;
                        *slot = if welch {
                            welch_from_moments(n0 as f64, s0, q0, n1 as f64, s1, q1)
                        } else {
                            equalvar_from_moments(n0 as f64, s0, q0, n1 as f64, s1, q1)
                        };
                    }
                }
            }
            TestMethod::Wilcoxon => {
                for fi in fast_range {
                    let g = self.fast_genes[fi];
                    let row = &self.values[fi * cols..(fi + 1) * cols];
                    let slots = &mut out[g * stride..g * stride + idx_lists.len()];
                    for (slot, idx) in slots.iter_mut().zip(idx_lists) {
                        let n1 = idx.len();
                        let n0 = cols - n1;
                        if n0 == 0 || n1 == 0 {
                            *slot = f64::NAN;
                            continue;
                        }
                        let n = (n0 + n1) as f64;
                        let expect = n1 as f64 * (n + 1.0) / 2.0;
                        let var = n0 as f64 * n1 as f64 * (n + 1.0) / 12.0;
                        if var <= 0.0 {
                            *slot = f64::NAN;
                            continue;
                        }
                        let sd = var.sqrt();
                        let mut w = 0.0;
                        for &j in idx {
                            w += row[j];
                        }
                        *slot = (w - expect) / sd;
                    }
                }
            }
            TestMethod::F | TestMethod::PairT | TestMethod::BlockF => {
                unreachable!("FastKernel::build rejects methods without a fast form")
            }
        }
    }

    /// Compute the statistics of every fast gene for the permutation whose
    /// group-1 columns are `idx` (from [`FastKernel::group1_indices`]),
    /// writing into `out` (indexed by gene). Scalar-path genes are left
    /// untouched.
    pub fn stats_into(&self, idx: &[usize], out: &mut [f64]) {
        let cols = self.cols;
        let n1 = idx.len();
        let n0 = cols - n1;
        match self.method {
            TestMethod::T | TestMethod::TEqualVar => {
                // Mirrors the scalar guard `g0.n < 2 || g1.n < 2`; for
                // NA-free rows the group counts equal the label counts, so
                // one check covers every fast gene.
                if n0 < 2 || n1 < 2 {
                    for &g in &self.fast_genes {
                        out[g] = f64::NAN;
                    }
                    return;
                }
                let n0f = n0 as f64;
                let n1f = n1 as f64;
                let welch = self.method == TestMethod::T;
                for (fi, &g) in self.fast_genes.iter().enumerate() {
                    let row = &self.values[fi * cols..(fi + 1) * cols];
                    let mut s1 = 0.0;
                    let mut q1 = 0.0;
                    for &j in idx {
                        let v = row[j];
                        s1 += v;
                        q1 += v * v;
                    }
                    let s0 = self.total_sum[fi] - s1;
                    let q0 = self.total_sumsq[fi] - q1;
                    out[g] = if welch {
                        welch_from_moments(n0f, s0, q0, n1f, s1, q1)
                    } else {
                        equalvar_from_moments(n0f, s0, q0, n1f, s1, q1)
                    };
                }
            }
            TestMethod::Wilcoxon => {
                // Mirrors the scalar guard `n0 == 0 || n1 == 0`.
                if n0 == 0 || n1 == 0 {
                    for &g in &self.fast_genes {
                        out[g] = f64::NAN;
                    }
                    return;
                }
                let n = (n0 + n1) as f64;
                let expect = n1 as f64 * (n + 1.0) / 2.0;
                let var = n0 as f64 * n1 as f64 * (n + 1.0) / 12.0;
                if var <= 0.0 {
                    for &g in &self.fast_genes {
                        out[g] = f64::NAN;
                    }
                    return;
                }
                let sd = var.sqrt();
                for (fi, &g) in self.fast_genes.iter().enumerate() {
                    let row = &self.values[fi * cols..(fi + 1) * cols];
                    let mut w = 0.0;
                    for &j in idx {
                        w += row[j];
                    }
                    out[g] = (w - expect) / sd;
                }
            }
            TestMethod::F | TestMethod::PairT | TestMethod::BlockF => {
                unreachable!("FastKernel::build rejects methods without a fast form")
            }
        }
    }
}

/// Welch t from group moments, mirroring `two_sample::welch_t` +
/// `GroupSums::variance` operation for operation (same clamps and guards).
#[inline]
fn welch_from_moments(n0: f64, s0: f64, q0: f64, n1: f64, s1: f64, q1: f64) -> f64 {
    let v1 = ((q1 - s1 * s1 / n1) / (n1 - 1.0)).max(0.0);
    let v0 = ((q0 - s0 * s0 / n0) / (n0 - 1.0)).max(0.0);
    let se2 = v1 / n1 + v0 / n0;
    if se2 <= 0.0 {
        return f64::NAN;
    }
    (s1 / n1 - s0 / n0) / se2.sqrt()
}

/// Pooled-variance t from group moments, mirroring `two_sample::equalvar_t` +
/// `GroupSums::ss` operation for operation.
#[inline]
fn equalvar_from_moments(n0: f64, s0: f64, q0: f64, n1: f64, s1: f64, q1: f64) -> f64 {
    let ss0 = (q0 - s0 * s0 / n0).max(0.0);
    let ss1 = (q1 - s1 * s1 / n1).max(0.0);
    let pooled = (ss0 + ss1) / (n0 + n1 - 2.0);
    let se2 = pooled * (1.0 / n0 + 1.0 / n1);
    if se2 <= 0.0 {
        return f64::NAN;
    }
    (s1 / n1 - s0 / n0) / se2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ranks::midranks;
    use crate::stats::two_sample::{equalvar_t, welch_t};
    use crate::stats::wilcoxon::wilcoxon_from_ranks;

    fn stats_for(k: &FastKernel, labels: &[u8], genes: usize) -> Vec<f64> {
        let mut idx = Vec::new();
        FastKernel::group1_indices(labels, &mut idx);
        let mut out = vec![f64::NAN; genes];
        k.stats_into(&idx, &mut out);
        out
    }

    #[test]
    fn rejects_methods_without_fast_form() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        for method in [TestMethod::F, TestMethod::PairT, TestMethod::BlockF] {
            assert!(FastKernel::build(&m, method).is_none());
        }
        assert!(FastKernel::build(&m, TestMethod::T).is_some());
    }

    #[test]
    fn partitions_na_rows_to_scalar() {
        let m = Matrix::from_vec(
            3,
            4,
            vec![
                1.0,
                2.0,
                3.0,
                4.0,
                1.0,
                f64::NAN,
                3.0,
                4.0,
                5.0,
                6.0,
                7.0,
                8.0,
            ],
        )
        .unwrap();
        let k = FastKernel::build(&m, TestMethod::T).unwrap();
        assert_eq!(k.fast_genes(), &[0, 2]);
        assert_eq!(k.scalar_genes(), &[1]);
    }

    #[test]
    fn all_na_rows_disable_the_kernel() {
        let m = Matrix::from_vec(1, 4, vec![f64::NAN, 1.0, 2.0, 3.0]).unwrap();
        assert!(FastKernel::build(&m, TestMethod::T).is_none());
    }

    #[test]
    fn welch_matches_scalar_bit_for_bit_on_group1_sums() {
        // The full statistic agrees with the scalar one to ulp level; the
        // shared exact part (s1-derived) makes differences ≤ a few ulps.
        let row = vec![3.5, -1.25, 7.0, 0.5, 2.25, -4.0, 9.5, 1.0];
        let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
        let k = FastKernel::build(&m, TestMethod::T).unwrap();
        for labels in [
            [0u8, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [1, 1, 0, 0, 0, 0, 1, 1],
        ] {
            let fast = stats_for(&k, &labels, 1)[0];
            let scalar = welch_t(&row, &labels);
            assert!(
                (fast - scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
                "{fast} vs {scalar}"
            );
        }
    }

    #[test]
    fn equalvar_matches_scalar() {
        let row = vec![10.5, 11.25, 9.0, 10.0, 14.25, 13.0, 15.5, 14.0];
        let m = Matrix::from_vec(1, 8, row.clone()).unwrap();
        let k = FastKernel::build(&m, TestMethod::TEqualVar).unwrap();
        let labels = [0u8, 0, 0, 0, 1, 1, 1, 1];
        let fast = stats_for(&k, &labels, 1)[0];
        let scalar = equalvar_t(&row, &labels);
        assert!(
            (fast - scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
            "{fast} vs {scalar}"
        );
    }

    #[test]
    fn wilcoxon_is_bitwise_identical_to_scalar() {
        let data = [0.3, 2.0, -1.0, 7.0, 0.5, 4.0, 2.0, -3.5];
        let ranks = midranks(&data);
        let m = Matrix::from_vec(1, 8, ranks.clone()).unwrap();
        let k = FastKernel::build(&m, TestMethod::Wilcoxon).unwrap();
        for labels in [
            [0u8, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [0, 1, 1, 1, 1, 1, 1, 1],
        ] {
            let fast = stats_for(&k, &labels, 1)[0];
            let scalar = wilcoxon_from_ranks(&ranks, &labels);
            assert_eq!(fast.to_bits(), scalar.to_bits(), "{fast} vs {scalar}");
        }
    }

    #[test]
    fn constant_row_gives_nan_like_scalar() {
        let row = vec![5.0; 6];
        let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
        let k = FastKernel::build(&m, TestMethod::T).unwrap();
        let labels = [0u8, 0, 0, 1, 1, 1];
        assert!(stats_for(&k, &labels, 1)[0].is_nan());
        assert!(welch_t(&row, &labels).is_nan());
    }

    #[test]
    fn degenerate_group_sizes_give_nan() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let k = FastKernel::build(&m, TestMethod::T).unwrap();
        // One group-1 column: t undefined.
        assert!(stats_for(&k, &[0, 0, 0, 1], 1)[0].is_nan());
        // Wilcoxon allows 1 but not 0.
        let kw = FastKernel::build(&m, TestMethod::Wilcoxon).unwrap();
        assert!(stats_for(&kw, &[0, 0, 0, 0], 1)[0].is_nan());
        assert!(stats_for(&kw, &[0, 0, 0, 1], 1)[0].is_finite());
    }

    #[test]
    fn batch_entry_is_bitwise_identical_to_one_at_a_time() {
        let data = vec![
            3.5, -1.25, 7.0, 0.5, 2.25, -4.0, 9.5, 1.0, // gene 0
            10.5, 11.25, 9.0, 10.0, 14.25, 13.0, 15.5, 14.0, // gene 1
            0.3, 2.0, -1.0, 7.0, 0.5, 4.0, 2.0, -3.5, // gene 2
        ];
        let m = Matrix::from_vec(3, 8, data).unwrap();
        let arrangements: [[u8; 8]; 4] = [
            [0, 0, 0, 0, 1, 1, 1, 1],
            [1, 0, 1, 0, 1, 0, 1, 0],
            [1, 1, 0, 0, 0, 0, 1, 1],
            [0, 0, 0, 1, 1, 1, 1, 1], // degenerate for t (n1=5, n0=3 fine) — vary sizes
        ];
        for method in [TestMethod::T, TestMethod::TEqualVar, TestMethod::Wilcoxon] {
            let k = FastKernel::build(&m, method).unwrap();
            let idx_lists: Vec<Vec<usize>> = arrangements
                .iter()
                .map(|labels| {
                    let mut idx = Vec::new();
                    FastKernel::group1_indices(labels, &mut idx);
                    idx
                })
                .collect();
            let stride = idx_lists.len();
            let mut batched = vec![f64::NAN; 3 * stride];
            k.stats_batch_into(&idx_lists, 0..k.fast_genes().len(), &mut batched, stride);
            for (j, idx) in idx_lists.iter().enumerate() {
                let mut single = vec![f64::NAN; 3];
                k.stats_into(idx, &mut single);
                for g in 0..3 {
                    assert_eq!(
                        batched[g * stride + j].to_bits(),
                        single[g].to_bits(),
                        "{method:?} gene {g} perm {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn pivot_shift_keeps_large_offsets_stable() {
        // The cached moments inherit the scalar path's pivot-shift safety:
        // data at offset 1e8 still produces an accurate t.
        let base = 1.0e8;
        let row: Vec<f64> = [1.0, 2.0, 3.0, 7.0, 8.0, 9.5]
            .iter()
            .map(|v| v + base)
            .collect();
        let centered: Vec<f64> = row.iter().map(|v| v - base).collect();
        let m = Matrix::from_vec(1, 6, row.clone()).unwrap();
        let k = FastKernel::build(&m, TestMethod::T).unwrap();
        let labels = [0u8, 0, 0, 1, 1, 1];
        let fast = stats_for(&k, &labels, 1)[0];
        let reference = welch_t(&centered, &labels);
        assert!((fast - reference).abs() < 1e-9, "{fast} vs {reference}");
    }
}
