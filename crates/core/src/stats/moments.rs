//! NA-aware first and second moments.
//!
//! Statistics run once per gene per permutation — the hot loop of the whole
//! system — so the accumulators are single-pass. To keep the single-pass
//! variance numerically safe for data far from zero, values are shifted by a
//! per-row pivot (the first non-missing value) before squaring; the shift
//! cancels exactly in variances and in mean *differences*.

/// Running sums for one group: count, Σ(x−pivot), Σ(x−pivot)².
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupSums {
    /// Number of non-missing observations.
    pub n: usize,
    /// Sum of pivot-shifted values.
    pub sum: f64,
    /// Sum of squared pivot-shifted values.
    pub sumsq: f64,
}

impl GroupSums {
    /// Add a (pivot-shifted) observation.
    #[inline]
    pub fn push(&mut self, shifted: f64) {
        self.n += 1;
        self.sum += shifted;
        self.sumsq += shifted * shifted;
    }

    /// Mean of the shifted values (add the pivot back for the true mean —
    /// or don't, when only differences of means are needed).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    /// Unbiased sample variance; `NaN` if `n < 2`. Clamped at zero to absorb
    /// floating-point cancellation.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        let n = self.n as f64;
        let v = (self.sumsq - self.sum * self.sum / n) / (n - 1.0);
        v.max(0.0)
    }

    /// Sum of squared deviations from the group mean (`(n−1)·s²`), clamped at
    /// zero.
    #[inline]
    pub fn ss(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let n = self.n as f64;
        (self.sumsq - self.sum * self.sum / n).max(0.0)
    }
}

/// Find the pivot for a row: its first non-missing value, or 0.0 when the row
/// is entirely missing.
#[inline]
pub fn pivot_of(row: &[f64]) -> f64 {
    row.iter().copied().find(|v| !v.is_nan()).unwrap_or(0.0)
}

/// NA-aware mean of a slice; `NaN` if all values are missing.
pub fn na_mean(values: &[f64]) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0;
    for &v in values {
        if !v.is_nan() {
            n += 1;
            sum += v;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// NA-aware unbiased sample variance; `NaN` if fewer than two present values.
pub fn na_variance(values: &[f64]) -> f64 {
    let pivot = pivot_of(values);
    let mut g = GroupSums::default();
    for &v in values {
        if !v.is_nan() {
            g.push(v - pivot);
        }
    }
    g.variance()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((na_mean(&xs) - 2.5).abs() < 1e-12);
        // var = ((1.5)^2+(0.5)^2+(0.5)^2+(1.5)^2)/3 = 5/3
        assert!((na_variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn na_cells_are_excluded() {
        let xs = [1.0, f64::NAN, 3.0];
        assert!((na_mean(&xs) - 2.0).abs() < 1e-12);
        assert!((na_variance(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_give_nan() {
        assert!(na_mean(&[f64::NAN, f64::NAN]).is_nan());
        assert!(na_variance(&[5.0]).is_nan());
        assert!(na_variance(&[f64::NAN]).is_nan());
        assert!(na_mean(&[]).is_nan());
    }

    #[test]
    fn pivot_shift_preserves_variance_for_large_offsets() {
        // Without shifting, 1e8-offset data loses most precision in the
        // sum-of-squares; with the pivot shift the variance stays exact.
        let base = 1.0e8;
        let xs = [base + 1.0, base + 2.0, base + 3.0];
        assert!((na_variance(&xs) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn group_sums_push_accumulates() {
        let mut g = GroupSums::default();
        for v in [1.0, 2.0, 3.0] {
            g.push(v);
        }
        assert_eq!(g.n, 3);
        assert!((g.mean() - 2.0).abs() < 1e-12);
        assert!((g.variance() - 1.0).abs() < 1e-12);
        assert!((g.ss() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_clamped_nonnegative() {
        let mut g = GroupSums::default();
        // Identical values can give tiny negative raw variance via FP error.
        for _ in 0..10 {
            g.push(0.1 + 0.2); // 0.30000000000000004
        }
        assert!(g.variance() >= 0.0);
        assert!(g.ss() >= 0.0);
    }

    #[test]
    fn pivot_of_skips_leading_nan() {
        assert_eq!(pivot_of(&[f64::NAN, 7.0, 1.0]), 7.0);
        assert_eq!(pivot_of(&[f64::NAN]), 0.0);
        assert_eq!(pivot_of(&[]), 0.0);
    }
}
