//! Paired t-statistic (`test = "pairt"`).
//!
//! Columns come in consecutive pairs `(2j, 2j+1)` whose labels are `{0,1}` in
//! some order. The per-pair difference is `value-with-label-1 minus
//! value-with-label-0`; the statistic is `mean(d) / sqrt(var(d)/m)`. Pairs
//! with a missing member are excluded entirely (a difference needs both
//! sides).

use super::moments::GroupSums;
use super::soa::Real;

/// Paired t from the complete-pair count, the signed difference sum and the
/// (sign-invariant) square sum, mirroring [`paired_t`] +
/// `GroupSums::variance` operation for operation. The caller handles the
/// `n < 2` guard.
#[inline]
pub(crate) fn pairt_from_moments<R: Real>(n: usize, s: R, sumsq: R) -> R {
    let nf = R::from_usize(n);
    let one = R::from_f64(1.0);
    let var = ((sumsq - s * s / nf) / (nf - one)).max(R::ZERO);
    if var <= R::ZERO {
        return R::nan();
    }
    (s / nf) / (var / nf).sqrt()
}

/// Paired t over consecutive pairs. `NaN` when fewer than two complete pairs
/// remain or the differences have zero variance.
pub fn paired_t(row: &[f64], labels: &[u8]) -> f64 {
    debug_assert_eq!(row.len(), labels.len());
    debug_assert_eq!(row.len() % 2, 0);
    let mut acc = GroupSums::default();
    for j in 0..row.len() / 2 {
        let a = row[2 * j];
        let b = row[2 * j + 1];
        if a.is_nan() || b.is_nan() {
            continue;
        }
        // labels[2j] == 0 ⇒ second member carries label 1 ⇒ d = b − a.
        let d = if labels[2 * j] == 0 { b - a } else { a - b };
        acc.push(d);
    }
    if acc.n < 2 {
        return f64::NAN;
    }
    let var = acc.variance();
    if var <= 0.0 {
        return f64::NAN;
    }
    acc.mean() / (var / acc.n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn hand_computed() {
        // Pairs (1,2),(3,5),(2,4),(5,9), all labelled (0,1):
        // d = [1,2,2,4], mean 2.25, var 19/12,
        // t = 2.25 / sqrt(19/48) ≈ 3.576237…
        let row = [1.0, 2.0, 3.0, 5.0, 2.0, 4.0, 5.0, 9.0];
        let labels = [0, 1, 0, 1, 0, 1, 0, 1];
        let expect = 2.25 / (19.0f64 / 48.0).sqrt();
        assert!((paired_t(&row, &labels) - expect).abs() < TOL);
    }

    #[test]
    fn label_order_flips_difference_sign() {
        let row = [1.0, 2.0, 3.0, 5.0, 2.0, 4.0, 5.0, 9.0];
        let fwd = paired_t(&row, &[0, 1, 0, 1, 0, 1, 0, 1]);
        let rev = paired_t(&row, &[1, 0, 1, 0, 1, 0, 1, 0]);
        assert!((fwd + rev).abs() < TOL);
    }

    #[test]
    fn mixed_pair_orientations() {
        // Flipping one pair's labels negates that pair's difference only.
        let row = [1.0, 2.0, 3.0, 5.0, 2.0, 4.0, 5.0, 9.0];
        let labels = [1, 0, 0, 1, 0, 1, 0, 1]; // d = [-1, 2, 2, 4]
        let d = [-1.0f64, 2.0, 2.0, 4.0];
        let mean = d.iter().sum::<f64>() / 4.0;
        let var = d.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 3.0;
        let expect = mean / (var / 4.0).sqrt();
        assert!((paired_t(&row, &labels) - expect).abs() < TOL);
    }

    #[test]
    fn incomplete_pairs_are_dropped() {
        let row = [1.0, 2.0, f64::NAN, 5.0, 2.0, 4.0, 5.0, 9.0];
        let labels = [0, 1, 0, 1, 0, 1, 0, 1];
        let clean = paired_t(&[1.0, 2.0, 2.0, 4.0, 5.0, 9.0], &[0, 1, 0, 1, 0, 1]);
        assert!((paired_t(&row, &labels) - clean).abs() < TOL);
    }

    #[test]
    fn too_few_pairs_give_nan() {
        // Only one complete pair remains.
        let row = [1.0, 2.0, f64::NAN, 5.0];
        let labels = [0, 1, 0, 1];
        assert!(paired_t(&row, &labels).is_nan());
    }

    #[test]
    fn zero_variance_differences_give_nan() {
        // All differences identical.
        let row = [0.0, 1.0, 5.0, 6.0, -3.0, -2.0];
        let labels = [0, 1, 0, 1, 0, 1];
        assert!(paired_t(&row, &labels).is_nan());
    }
}
