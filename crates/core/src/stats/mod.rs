//! Test statistics: the six methods of `mt.maxT`/`pmaxT`, a per-run
//! dispatcher, and the data preparation step (NA canonicalization and rank
//! transforms).

pub mod block_f;
pub mod corr;
pub mod f_stat;
pub mod moments;
pub mod pair_t;
pub mod ranks;
pub mod scorer;
#[cfg(feature = "explicit-simd")]
pub(crate) mod simd;
pub mod soa;
pub mod two_sample;
pub mod wilcoxon;

use std::borrow::Cow;

use crate::labels::{ClassLabels, Design};
use crate::matrix::Matrix;
use crate::options::TestMethod;

/// Prepare the data matrix for a run: rank-transform rows when the method is
/// Wilcoxon or `nonpara = "y"` asks for non-parametric statistics. Returns a
/// borrowed matrix when no transform is needed (zero copy).
///
/// Ranks depend only on the data, never on the label permutation, so doing
/// this once up front removes all ranking work from the permutation kernel —
/// the same optimization as the `multtest` C implementation.
pub fn prepare_matrix<'m>(data: &'m Matrix, method: TestMethod, nonpara: bool) -> Cow<'m, Matrix> {
    let needs_ranks = method == TestMethod::Wilcoxon || nonpara;
    if !needs_ranks {
        return Cow::Borrowed(data);
    }
    let mut owned = data.clone();
    let mut scratch = Vec::with_capacity(owned.cols());
    owned.map_rows_in_place(|row| ranks::midranks_in_place(row, &mut scratch));
    Cow::Owned(owned)
}

/// A per-run statistic dispatcher binding the method to its design constants
/// (class count, treatment count). `compute` is the inner call of the
/// permutation kernel.
#[derive(Debug, Clone, Copy)]
pub struct StatComputer {
    method: TestMethod,
    /// Classes for `f` / treatments for `blockf`; 2 for two-sample methods.
    k: usize,
}

impl StatComputer {
    /// Build from validated labels.
    pub fn new(method: TestMethod, labels: &ClassLabels) -> Self {
        let k = match labels.design() {
            Design::TwoSample { .. } => 2,
            Design::MultiClass { counts } => counts.len(),
            Design::Paired { .. } => 2,
            Design::Block { treatments, .. } => *treatments,
        };
        StatComputer { method, k }
    }

    /// The bound method.
    pub fn method(&self) -> TestMethod {
        self.method
    }

    /// Classes for `f` / treatments for `blockf`; 2 for the two-sample and
    /// paired designs.
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Compute the statistic of one (prepared) row under a label arrangement.
    #[inline]
    pub fn compute(&self, row: &[f64], labels: &[u8]) -> f64 {
        match self.method {
            TestMethod::T => two_sample::welch_t(row, labels),
            TestMethod::TEqualVar => two_sample::equalvar_t(row, labels),
            TestMethod::Wilcoxon => wilcoxon::wilcoxon_from_ranks(row, labels),
            TestMethod::F => f_stat::oneway_f(row, labels, self.k),
            TestMethod::PairT => pair_t::paired_t(row, labels),
            TestMethod::BlockF => block_f::block_f(row, labels, self.k),
            TestMethod::Corr => corr::pearson_corr(row, labels),
            // tmax reuses the per-gene Welch t; it differs from `t` only in
            // how the maxT layer counts (single-step global max).
            TestMethod::TMax => two_sample::welch_t(row, labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TestMethod;

    fn matrix_2x4() -> Matrix {
        Matrix::from_vec(2, 4, vec![4.0, 1.0, 3.0, 2.0, 10.0, 20.0, 30.0, 40.0]).unwrap()
    }

    #[test]
    fn prepare_is_zero_copy_for_parametric() {
        let m = matrix_2x4();
        let p = prepare_matrix(&m, TestMethod::T, false);
        assert!(matches!(p, Cow::Borrowed(_)));
    }

    #[test]
    fn prepare_ranks_for_wilcoxon() {
        let m = matrix_2x4();
        let p = prepare_matrix(&m, TestMethod::Wilcoxon, false);
        assert!(matches!(p, Cow::Owned(_)));
        assert_eq!(p.row(0), &[4.0, 1.0, 3.0, 2.0]); // already rank-like values
        assert_eq!(p.row(1), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn prepare_ranks_for_nonpara() {
        let m = matrix_2x4();
        let p = prepare_matrix(&m, TestMethod::T, true);
        assert!(matches!(p, Cow::Owned(_)));
        assert_eq!(p.row(1), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dispatcher_routes_every_method() {
        // Two-sample family on a 6-column row.
        let row = [1.0, 2.0, 3.0, 4.0, 5.0, 7.0];
        let two = ClassLabels::new(vec![0, 0, 0, 1, 1, 1], TestMethod::T).unwrap();
        for method in [TestMethod::T, TestMethod::TEqualVar] {
            let c = StatComputer::new(method, &two);
            assert!(c.compute(&row, two.as_slice()).is_finite());
            assert_eq!(c.method(), method);
        }
        // Wilcoxon works on pre-ranked rows.
        let ranked = ranks::midranks(&row);
        let c = StatComputer::new(TestMethod::Wilcoxon, &two);
        assert!(c.compute(&ranked, two.as_slice()).is_finite());
        // F with three classes.
        let f_labels = ClassLabels::new(vec![0, 0, 1, 1, 2, 2], TestMethod::F).unwrap();
        let c = StatComputer::new(TestMethod::F, &f_labels);
        assert!(c.compute(&row, f_labels.as_slice()).is_finite());
        // Paired t.
        let p_labels = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::PairT).unwrap();
        let c = StatComputer::new(TestMethod::PairT, &p_labels);
        let p_row = [1.0, 2.0, 3.0, 5.0, 2.0, 4.5];
        assert!(c.compute(&p_row, p_labels.as_slice()).is_finite());
        // Block F.
        let b_labels = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::BlockF).unwrap();
        let c = StatComputer::new(TestMethod::BlockF, &b_labels);
        let b_row = [1.0, 2.3, 2.0, 4.1, 3.0, 6.2];
        assert!(c.compute(&b_row, b_labels.as_slice()).is_finite());
    }

    #[test]
    fn wilcoxon_equals_nonpara_rank_pipeline() {
        // Preparing with Wilcoxon and computing the rank-sum must equal
        // manually ranking then computing.
        let m = Matrix::from_vec(1, 6, vec![0.3, 2.0, -1.0, 7.0, 0.5, 4.0]).unwrap();
        let labels = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::Wilcoxon).unwrap();
        let prepared = prepare_matrix(&m, TestMethod::Wilcoxon, false);
        let c = StatComputer::new(TestMethod::Wilcoxon, &labels);
        let via_pipeline = c.compute(prepared.row(0), labels.as_slice());
        let manual = wilcoxon::wilcoxon_from_ranks(&ranks::midranks(m.row(0)), labels.as_slice());
        assert_eq!(via_pipeline, manual);
    }
}
