//! Per-permutation statistic streams — the `mt.sample.teststat` /
//! `mt.sample.rawp` companions of `multtest`: expose the permutation
//! distribution itself for diagnostics, QQ plots and downstream method
//! development.

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::options::PmaxtOptions;
use crate::perm::{build_generator, resolve_permutation_count};
use crate::stats::{prepare_matrix, StatComputer};

/// The permutation distribution of one gene's statistic: `stats[b]` is the
/// raw statistic under the `b`-th label arrangement (`b = 0` is the observed
/// labelling).
pub fn sample_teststats(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    gene: usize,
) -> Result<Vec<f64>> {
    if gene >= data.rows() {
        return Err(Error::BadMatrix(format!(
            "gene index {gene} out of range for {} rows",
            data.rows()
        )));
    }
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    let owned_na;
    let data = match opts.na {
        Some(code) => {
            owned_na =
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?;
            &owned_na
        }
        None => data,
    };
    let b = resolve_permutation_count(&labels, opts)?;
    let prepared = prepare_matrix(data, opts.test, opts.nonpara);
    let computer = StatComputer::new(opts.test, &labels);
    let row = prepared.row(gene);
    let mut gen = build_generator(&labels, opts, b)?;
    let mut buf = vec![0u8; data.cols()];
    let mut out = Vec::with_capacity(b as usize);
    while gen.next_into(&mut buf) {
        out.push(computer.compute(row, &buf));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxt::serial::mt_maxt;
    use crate::side::Side;

    fn data() -> (Matrix, Vec<u8>) {
        (
            Matrix::from_vec(
                2,
                6,
                vec![1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 1.0, 4.0, 2.0, 3.0, 6.0],
            )
            .unwrap(),
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn first_entry_is_the_observed_statistic() {
        let (m, l) = data();
        let opts = PmaxtOptions::default().permutations(25);
        let stats = sample_teststats(&m, &l, &opts, 0).unwrap();
        assert_eq!(stats.len(), 25);
        let result = mt_maxt(&m, &l, &opts).unwrap();
        assert_eq!(stats[0], result.teststat[0]);
    }

    #[test]
    fn raw_p_recomputable_from_the_stream() {
        // The definition: rawp = #{b : score_b ≥ score_0 − ε} / B.
        let (m, l) = data();
        let opts = PmaxtOptions::default().permutations(0); // complete: 20
        for gene in 0..2 {
            let stats = sample_teststats(&m, &l, &opts, gene).unwrap();
            let obs = Side::Abs.score(stats[0]);
            let count = stats
                .iter()
                .filter(|&&s| Side::Abs.score(s) >= obs - crate::maxt::EPSILON)
                .count();
            let p = count as f64 / stats.len() as f64;
            let result = mt_maxt(&m, &l, &opts).unwrap();
            assert!((p - result.rawp[gene]).abs() < 1e-12, "gene {gene}");
        }
    }

    #[test]
    fn complete_two_sample_distribution_is_sign_symmetric() {
        // Complete enumeration of a balanced two-class design contains each
        // arrangement's mirror, so the t-statistic multiset is symmetric.
        let (m, l) = data();
        let opts = PmaxtOptions::default().permutations(0);
        let mut stats = sample_teststats(&m, &l, &opts, 0).unwrap();
        stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = stats.len();
        for i in 0..n / 2 {
            assert!(
                (stats[i] + stats[n - 1 - i]).abs() < 1e-9,
                "asymmetry at {i}: {} vs {}",
                stats[i],
                stats[n - 1 - i]
            );
        }
    }

    #[test]
    fn out_of_range_gene_rejected() {
        let (m, l) = data();
        let opts = PmaxtOptions::default().permutations(5);
        assert!(matches!(
            sample_teststats(&m, &l, &opts, 2),
            Err(Error::BadMatrix(_))
        ));
    }
}
