//! Permutation count accumulators — the "partial observations" each process
//! gathers (paper §3.2 Step 4) before the master reduces them (Step 5).
//!
//! Counts are integers, so the parallel sum-reduction is exact and the
//! parallel run reproduces the serial run bit-for-bit.

/// Per-gene exceedance counts over a set of permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountAccumulator {
    /// `count_raw[g]`: permutations whose score for gene `g` (original
    /// order) reached the observed score.
    pub count_raw: Vec<u64>,
    /// `count_adj[i]`: permutations whose successive maximum at ordered
    /// position `i` reached the observed score at that position.
    pub count_adj: Vec<u64>,
    /// Number of permutations accumulated.
    pub n_perm: u64,
}

impl CountAccumulator {
    /// Zero counts for `genes` genes.
    pub fn new(genes: usize) -> Self {
        CountAccumulator {
            count_raw: vec![0; genes],
            count_adj: vec![0; genes],
            n_perm: 0,
        }
    }

    /// Number of genes.
    pub fn genes(&self) -> usize {
        self.count_raw.len()
    }

    /// Merge another accumulator (element-wise sums).
    pub fn merge(&mut self, other: &CountAccumulator) {
        assert_eq!(self.genes(), other.genes(), "gene counts must match");
        for (a, b) in self.count_raw.iter_mut().zip(&other.count_raw) {
            *a += *b;
        }
        for (a, b) in self.count_adj.iter_mut().zip(&other.count_adj) {
            *a += *b;
        }
        self.n_perm += other.n_perm;
    }

    /// Flatten to a single vector for transport through a sum-reduction:
    /// `count_raw ++ count_adj ++ [n_perm]`. Summing flattened vectors
    /// element-wise is exactly `merge`.
    pub fn to_flat(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(2 * self.genes() + 1);
        v.extend_from_slice(&self.count_raw);
        v.extend_from_slice(&self.count_adj);
        v.push(self.n_perm);
        v
    }

    /// Rebuild from the flattened form.
    pub fn from_flat(flat: &[u64], genes: usize) -> Self {
        assert_eq!(flat.len(), 2 * genes + 1, "flat length mismatch");
        CountAccumulator {
            count_raw: flat[..genes].to_vec(),
            count_adj: flat[genes..2 * genes].to_vec(),
            n_perm: flat[2 * genes],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let a = CountAccumulator::new(3);
        assert_eq!(a.count_raw, vec![0; 3]);
        assert_eq!(a.count_adj, vec![0; 3]);
        assert_eq!(a.n_perm, 0);
        assert_eq!(a.genes(), 3);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = CountAccumulator {
            count_raw: vec![1, 2],
            count_adj: vec![3, 4],
            n_perm: 5,
        };
        let b = CountAccumulator {
            count_raw: vec![10, 20],
            count_adj: vec![30, 40],
            n_perm: 50,
        };
        a.merge(&b);
        assert_eq!(a.count_raw, vec![11, 22]);
        assert_eq!(a.count_adj, vec![33, 44]);
        assert_eq!(a.n_perm, 55);
    }

    #[test]
    fn flat_round_trip() {
        let a = CountAccumulator {
            count_raw: vec![1, 2, 3],
            count_adj: vec![4, 5, 6],
            n_perm: 7,
        };
        let flat = a.to_flat();
        assert_eq!(flat, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(CountAccumulator::from_flat(&flat, 3), a);
    }

    #[test]
    fn flat_sum_equals_merge() {
        let a = CountAccumulator {
            count_raw: vec![1, 2],
            count_adj: vec![3, 4],
            n_perm: 5,
        };
        let b = CountAccumulator {
            count_raw: vec![9, 8],
            count_adj: vec![7, 6],
            n_perm: 5,
        };
        let summed: Vec<u64> = a
            .to_flat()
            .iter()
            .zip(b.to_flat())
            .map(|(x, y)| x + y)
            .collect();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(CountAccumulator::from_flat(&summed, 2), merged);
    }

    #[test]
    #[should_panic(expected = "gene counts must match")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = CountAccumulator::new(2);
        let b = CountAccumulator::new(3);
        a.merge(&b);
    }
}
