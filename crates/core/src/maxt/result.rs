//! The result of a maxT run, mirroring the data frame `mt.maxT` returns
//! (`index`, `teststat`, `rawp`, `adjp`).

/// Raw and adjusted p-values plus the observed statistics.
///
/// Vectors are indexed by **original gene order**; [`MaxTResult::order`]
/// gives the significance ordering used by the step-down procedure (most
/// extreme first), matching the row order of the R data frame.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxTResult {
    /// Observed test statistic per gene.
    pub teststat: Vec<f64>,
    /// Raw (unadjusted) permutation p-value per gene.
    pub rawp: Vec<f64>,
    /// Westfall–Young step-down maxT adjusted p-value per gene.
    pub adjp: Vec<f64>,
    /// Gene indices sorted by decreasing extremeness of the observed
    /// statistic (ties by index; non-computable statistics last).
    pub order: Vec<usize>,
    /// Number of permutations actually used (the resolved `B`, identity
    /// included).
    pub b_used: u64,
}

/// One row of the significance-ordered view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxTRow {
    /// Original gene index (the `index` column of `mt.maxT`).
    pub index: usize,
    /// Observed statistic.
    pub teststat: f64,
    /// Raw p-value.
    pub rawp: f64,
    /// Adjusted p-value.
    pub adjp: f64,
}

impl MaxTResult {
    /// Number of genes.
    pub fn genes(&self) -> usize {
        self.teststat.len()
    }

    /// Rows in significance order — the shape of the `mt.maxT` data frame.
    pub fn by_significance(&self) -> impl Iterator<Item = MaxTRow> + '_ {
        self.order.iter().map(move |&g| MaxTRow {
            index: g,
            teststat: self.teststat[g],
            rawp: self.rawp[g],
            adjp: self.adjp[g],
        })
    }

    /// Genes with adjusted p-value at or below `alpha`, in significance
    /// order.
    pub fn significant_at(&self, alpha: f64) -> Vec<usize> {
        self.by_significance()
            .take_while(|row| row.adjp <= alpha)
            .map(|row| row.index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MaxTResult {
        MaxTResult {
            teststat: vec![1.0, 5.0, -3.0],
            rawp: vec![0.8, 0.01, 0.1],
            adjp: vec![0.9, 0.02, 0.2],
            order: vec![1, 2, 0],
            b_used: 100,
        }
    }

    #[test]
    fn by_significance_follows_order() {
        let r = sample();
        let rows: Vec<_> = r.by_significance().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].index, 1);
        assert_eq!(rows[0].teststat, 5.0);
        assert_eq!(rows[1].index, 2);
        assert_eq!(rows[2].index, 0);
    }

    #[test]
    fn significant_at_thresholds() {
        let r = sample();
        assert_eq!(r.significant_at(0.05), vec![1]);
        assert_eq!(r.significant_at(0.2), vec![1, 2]);
        assert_eq!(r.significant_at(1.0), vec![1, 2, 0]);
        assert!(r.significant_at(0.001).is_empty());
    }

    #[test]
    fn genes_counts_rows() {
        assert_eq!(sample().genes(), 3);
    }
}
