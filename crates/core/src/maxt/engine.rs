//! The production execution engine: batched, gene-tiled, multi-threaded
//! evaluation of a rank's permutation chunk.
//!
//! The paper parallelizes `mt.maxT` across MPI processes only; this module
//! extends the same Figure-2 chunking one level down the hardware hierarchy.
//! A chunk is split contiguously over a thread pool ([`split_chunk`]), each
//! worker forwards its own generator with `skip` (exactly like a rank does),
//! and evaluates its sub-chunk in **batches of K permutations** with
//! **gene-tiled** inner loops ([`MaxTContext::accumulate_batched`]) so each
//! matrix row streams through L1 once per batch instead of once per
//! permutation.
//!
//! ## Determinism
//!
//! Results are bitwise identical for any thread count and any batch size:
//!
//! - the statistic of (gene g, permutation j) is computed by the same float
//!   operation sequence whether permutations are evaluated one at a time or
//!   in a batch — batching reorders *which* (g, j) pair is computed when,
//!   never the operations inside one pair;
//! - exceedance counts are integers, derived pointwise from those scores, so
//!   per-worker partial counts are exact;
//! - partial counts are combined by [`tree_merge`], a fixed pairwise
//!   reduction over the worker order (worker = chunk position, not OS-thread
//!   completion order). `u64` addition is associative and commutative, so
//!   any merge order would give the same sums — fixing the tree shape makes
//!   the pipeline auditable end to end and keeps the guarantee independent
//!   of that argument.
//!
//! Thread/batch geometry is configured by [`EngineConfig`], with
//! `SPRINT_THREADS` / `SPRINT_BATCH` environment overrides mirroring the
//! `SPRINT_KERNEL` escape hatch.

use std::time::{Duration, Instant};

use rayon::prelude::*;

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::serial::prepare_run;
use crate::maxt::{CountAccumulator, MaxTContext, MaxTResult, EPSILON};
use crate::options::PmaxtOptions;
use crate::perm::{build_generator, PermutationGenerator};
use crate::stats::scorer::ScorerScratch;

/// Default permutations per batch when `batch = 0` (auto). Large enough to
/// amortize the per-batch label/index setup and give the tiled loop a hot
/// row, small enough that the gene-major score buffer stays modest.
pub const DEFAULT_BATCH: usize = 32;

/// Genes per tile of the batched inner loop. 256 rows × 8 bytes × a typical
/// sample count keeps a tile's working set within L2 while the row being
/// scored stays in L1 across the batch.
pub const GENE_TILE: usize = 256;

/// Resolved thread/batch geometry for one engine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads per rank (≥ 1).
    pub threads: usize,
    /// Permutations per batch (≥ 1).
    pub batch: usize,
}

impl EngineConfig {
    /// Geometry from explicit values; `0` means "auto" for either field
    /// (threads → available parallelism, batch → [`DEFAULT_BATCH`]).
    /// Environment variables are **not** consulted — benches use this to pin
    /// a configuration.
    pub fn explicit(threads: usize, batch: usize) -> Self {
        EngineConfig {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
            batch: if batch == 0 { DEFAULT_BATCH } else { batch },
        }
    }

    /// Single-threaded geometry with the default batch size.
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            batch: DEFAULT_BATCH,
        }
    }

    /// Geometry for a run: start from the options' `threads`/`batch`, apply
    /// the `SPRINT_THREADS` / `SPRINT_BATCH` environment overrides when set
    /// to valid numbers, then resolve `0` (auto) as in
    /// [`EngineConfig::explicit`]. Every driver (serial, SPMD, checkpoint)
    /// resolves through here, so the environment reaches all of them without
    /// options plumbing.
    pub fn resolve(opts: &PmaxtOptions) -> Self {
        let threads = env_usize("SPRINT_THREADS").unwrap_or(opts.threads);
        let batch = env_usize("SPRINT_BATCH").unwrap_or(opts.batch);
        Self::explicit(threads, batch)
    }
}

fn env_usize(name: &'static str) -> Option<usize> {
    let v = std::env::var(name).ok()?;
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            crate::options::warn_bad_env(name, &v, "a non-negative integer (0 = auto)");
            None
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `total` items into `parts` contiguous runs differing by at most one
/// item: the run at `index` is `(offset, count)`. The single even-split rule
/// shared by rank chunking ([`crate::pmaxt::chunk_for_rank`]) and thread
/// sub-chunking ([`split_chunk`]).
pub fn split_evenly(total: u64, parts: u64, index: u64) -> (u64, u64) {
    debug_assert!(parts > 0 && index < parts);
    let base = total / parts;
    let extra = total % parts;
    let count = base + u64::from(index < extra);
    let offset = index * base + index.min(extra);
    (offset, count)
}

/// Split a rank's chunk `[start, start + take)` over up to `threads` workers:
/// contiguous sub-chunks in worker order, never more workers than
/// permutations, empty when `take == 0`.
pub fn split_chunk(start: u64, take: u64, threads: usize) -> Vec<(u64, u64)> {
    if take == 0 {
        return Vec::new();
    }
    let workers = (threads.max(1) as u64).min(take);
    (0..workers)
        .map(|w| {
            let (off, count) = split_evenly(take, workers, w);
            (start + off, count)
        })
        .collect()
}

/// Deterministic pairwise reduction of per-worker partial counts, in worker
/// order: round after round, neighbour pairs merge until one accumulator
/// remains. Returns `None` for an empty input.
pub fn tree_merge(mut parts: Vec<CountAccumulator>) -> Option<CountAccumulator> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                left.merge(&right);
            }
            next.push(left);
        }
        parts = next;
    }
    parts.pop()
}

/// What one worker did: its sub-chunk and the wall-clock time it spent in
/// the batched kernel. Feeds the `make_tables threads` scaling table.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStat {
    /// Worker position within the chunk (also the merge-tree leaf order).
    pub worker: usize,
    /// First permutation index of the sub-chunk.
    pub start: u64,
    /// Number of permutations processed.
    pub take: u64,
    /// Time spent generating and scoring the sub-chunk.
    pub busy: Duration,
}

/// Result of [`accumulate_chunk`]: the merged counts plus per-worker timing.
#[derive(Debug, Clone)]
pub struct ChunkRun {
    /// Exceedance counts for the whole chunk (tree-merged).
    pub counts: CountAccumulator,
    /// One entry per worker, in worker order.
    pub workers: Vec<WorkerStat>,
}

/// Cooperative hooks observed by every engine worker between batches.
///
/// `cancel` is polled before each batch: once set, [`accumulate_chunk_hooked`]
/// abandons the chunk and returns [`Error::Cancelled`] — partial counts are
/// discarded, because a chunk interrupted mid-way is not a permutation-index
/// prefix and could never be resumed from a cursor. Callers that need
/// resumability (the `jobd` job service) process runs as a sequence of modest
/// chunks and checkpoint between them; the hook bounds cancellation latency
/// to one batch rather than one chunk.
///
/// `progress` is called after each batch with the number of permutations just
/// completed (concurrently from every worker — keep it cheap and atomic).
#[derive(Clone, Copy, Default)]
pub struct ChunkHooks<'a> {
    /// Cooperative cancellation flag, polled between batches.
    pub cancel: Option<&'a std::sync::atomic::AtomicBool>,
    /// Per-batch progress callback: receives permutations-just-finished.
    pub progress: Option<&'a (dyn Fn(u64) + Sync)>,
}

impl std::fmt::Debug for ChunkHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkHooks")
            .field("cancel", &self.cancel.map(|_| "AtomicBool"))
            .field("progress", &self.progress.map(|_| "Fn"))
            .finish()
    }
}

/// Process the permutation chunk `[start, start + take)` of a `b`-permutation
/// run: fan the chunk over `cfg.threads` workers, each evaluating its
/// sub-chunk in `cfg.batch`-sized batches, and tree-merge the partial counts.
///
/// Every worker builds its own generator from `(labels, opts, b)` and
/// forwards it with `skip`, exactly as a rank does, so the union of worker
/// sub-sequences is the chunk's slice of the serial permutation sequence.
pub fn accumulate_chunk(
    ctx: &MaxTContext<'_>,
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b: u64,
    start: u64,
    take: u64,
    cfg: EngineConfig,
) -> Result<ChunkRun> {
    accumulate_chunk_hooked(
        ctx,
        labels,
        opts,
        b,
        start,
        take,
        cfg,
        ChunkHooks::default(),
    )
}

/// [`accumulate_chunk`] with cooperative cancellation and progress reporting
/// (see [`ChunkHooks`]). Counts are bitwise-identical to the hook-free path:
/// workers evaluate the same batches in the same order, the hooks only
/// observe the boundaries between them.
#[allow(clippy::too_many_arguments)]
pub fn accumulate_chunk_hooked(
    ctx: &MaxTContext<'_>,
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b: u64,
    start: u64,
    take: u64,
    cfg: EngineConfig,
    hooks: ChunkHooks<'_>,
) -> Result<ChunkRun> {
    let genes = ctx.genes();
    let jobs = split_chunk(start, take, cfg.threads);
    if jobs.is_empty() {
        return Ok(ChunkRun {
            counts: CountAccumulator::new(genes),
            workers: Vec::new(),
        });
    }
    let cancelled = || -> bool {
        matches!(hooks.cancel, Some(f) if f.load(std::sync::atomic::Ordering::Relaxed))
    };
    let run_worker = |worker: usize, sub_start: u64, sub_take: u64| -> Result<_> {
        let begin = Instant::now();
        let mut gen = build_generator(labels, opts, b).expect("validated generator");
        gen.skip(sub_start);
        let mut acc = CountAccumulator::new(genes);
        // Batch buffers (labels, gene-major scores, scorer scratch) are
        // allocated once per worker and reused across every batch of the
        // sub-chunk — the hooked path below included.
        let mut bufs = ctx.batch_buffers(cfg.batch);
        if hooks.cancel.is_none() && hooks.progress.is_none() {
            // Hook-free fast path: one call over the whole sub-chunk.
            let done = ctx.accumulate_batched_with(&mut *gen, sub_take, &mut acc, &mut bufs);
            debug_assert_eq!(done, sub_take, "sub-chunk shorter than assigned");
            return Ok((
                acc,
                WorkerStat {
                    worker,
                    start: sub_start,
                    take: sub_take,
                    busy: begin.elapsed(),
                },
            ));
        }
        // Batch-at-a-time outer loop so the hooks run between batches; each
        // call scores exactly one batch with the same reused buffers, so the
        // inner arithmetic is the same sequence as one whole-sub-chunk call.
        let mut done = 0u64;
        while done < sub_take {
            if cancelled() {
                return Err(Error::Cancelled);
            }
            let step = (sub_take - done).min(cfg.batch.max(1) as u64);
            let did = ctx.accumulate_batched_with(&mut *gen, step, &mut acc, &mut bufs);
            debug_assert_eq!(did, step, "sub-chunk shorter than assigned");
            done += did;
            if let Some(progress) = hooks.progress {
                // The hook is caller code running inside every engine worker.
                // A panic there must not unwind through the thread-pool scope
                // (which would tear down sibling workers and poison the pool);
                // contain it at the boundary and surface a typed error — the
                // chunk's counts are discarded either way.
                let guarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    progress(did);
                }));
                if guarded.is_err() {
                    return Err(Error::Comm("progress hook panicked".to_string()));
                }
            }
        }
        Ok((
            acc,
            WorkerStat {
                worker,
                start: sub_start,
                take: sub_take,
                busy: begin.elapsed(),
            },
        ))
    };
    let parts: Vec<Result<(CountAccumulator, WorkerStat)>> = if jobs.len() == 1 {
        let (s, t) = jobs[0];
        vec![run_worker(0, s, t)]
    } else {
        let indexed: Vec<(usize, u64, u64)> = jobs
            .iter()
            .enumerate()
            .map(|(w, &(s, t))| (w, s, t))
            .collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs.len())
            .build()
            .map_err(|e| Error::Comm(format!("thread pool: {e}")))?;
        pool.install(|| {
            indexed
                .par_iter()
                .map(|&(w, s, t)| run_worker(w, s, t))
                .collect()
        })
    };
    let mut workers = Vec::with_capacity(parts.len());
    let mut counts = Vec::with_capacity(parts.len());
    for part in parts {
        let (acc, stat) = part?;
        counts.push(acc);
        workers.push(stat);
    }
    let counts = tree_merge(counts).expect("at least one worker ran");
    Ok(ChunkRun { counts, workers })
}

/// Full maxT run on the calling process with an explicit engine geometry —
/// the thread-pool analogue of `pmaxt` (and the promoted form of the bench
/// crate's former `maxt_rayon`). Environment overrides are not consulted;
/// use [`maxt_threaded`] for the resolving entry point.
pub fn maxt_with_config(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    cfg: EngineConfig,
) -> Result<MaxTResult> {
    let (labels, b, prepared) = prepare_run(data, classlabel, opts)?;
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &labels,
        opts.test,
        opts.side,
        opts.kernel,
        opts.precision,
    );
    let run = accumulate_chunk(&ctx, &labels, opts, b, 0, b, cfg)?;
    debug_assert_eq!(run.counts.n_perm, b);
    Ok(ctx.finalize(&run.counts))
}

/// Full maxT run with the geometry resolved from the options and the
/// `SPRINT_THREADS` / `SPRINT_BATCH` environment.
pub fn maxt_threaded(data: &Matrix, classlabel: &[u8], opts: &PmaxtOptions) -> Result<MaxTResult> {
    maxt_with_config(data, classlabel, opts, EngineConfig::resolve(opts))
}

/// Reusable per-worker buffers for the batched accumulation loop: the label
/// arrangements, the gene-major score buffer and the scorer's scratch.
/// Allocated once per worker (via [`MaxTContext::batch_buffers`]) and reused
/// across every batch, so the hot loop performs no allocation.
#[derive(Debug)]
pub struct BatchBuffers {
    labels_bufs: Vec<Vec<u8>>,
    scores: Vec<f64>,
    scratch: ScorerScratch,
}

impl MaxTContext<'_> {
    /// Allocate batch buffers for this context sized for `batch`
    /// arrangements per batch (`0` selects [`DEFAULT_BATCH`]).
    pub fn batch_buffers(&self, batch: usize) -> BatchBuffers {
        let batch = if batch == 0 { DEFAULT_BATCH } else { batch };
        let mut scratch = self.scorer.make_scratch();
        // Pre-size the lane accumulators so the first tile allocates nothing.
        self.scorer.warm_scratch(&mut scratch, GENE_TILE);
        BatchBuffers {
            labels_bufs: vec![vec![0u8; self.cols]; batch],
            scores: vec![0.0f64; self.genes * batch],
            scratch,
        }
    }

    /// Batched, gene-tiled variant of [`MaxTContext::accumulate`]: consume up
    /// to `take` permutations from `gen` in batches of `batch`, accumulating
    /// exceedance counts into `acc`. Returns the number of permutations
    /// processed. Allocating convenience over
    /// [`MaxTContext::accumulate_batched_with`].
    pub fn accumulate_batched(
        &self,
        gen: &mut dyn PermutationGenerator,
        take: u64,
        batch: usize,
        acc: &mut CountAccumulator,
    ) -> u64 {
        let mut bufs = self.batch_buffers(batch);
        self.accumulate_batched_with(gen, take, acc, &mut bufs)
    }

    /// Core of the batched path, reusing caller-owned [`BatchBuffers`] (the
    /// buffers' capacity is the batch size).
    ///
    /// Per batch, the scorer derives its per-arrangement structures once
    /// ([`crate::stats::scorer::Scorer::begin_batch`]); the matrix is then
    /// walked **gene-outer, permutation-inner** in tiles of [`GENE_TILE`]
    /// rows, so each cached row is loaded once per batch and scored against
    /// every arrangement while hot. Scores land gene-major in a
    /// `genes × batch` buffer; the statistic → extremeness transform fuses
    /// into the tile pass, and the step-down (successive-maxima) pass runs
    /// per permutation afterwards. Counts are identical to `accumulate` for
    /// every batch size — see the module docs.
    pub fn accumulate_batched_with(
        &self,
        gen: &mut dyn PermutationGenerator,
        take: u64,
        acc: &mut CountAccumulator,
        bufs: &mut BatchBuffers,
    ) -> u64 {
        assert_eq!(acc.genes(), self.genes(), "accumulator size mismatch");
        let batch = bufs.labels_bufs.len();
        debug_assert_eq!(bufs.scores.len(), self.genes * batch, "buffer mismatch");
        let mut done = 0u64;
        while done < take {
            let want = (take - done).min(batch as u64) as usize;
            let mut k = 0usize;
            while k < want && gen.next_into(&mut bufs.labels_bufs[k]) {
                k += 1;
            }
            if k == 0 {
                break;
            }
            self.score_batch(
                &bufs.labels_bufs[..k],
                &mut bufs.scratch,
                &mut bufs.scores,
                batch,
            );
            self.count_batch(&bufs.scores, batch, k, acc);
            done += k as u64;
        }
        done
    }

    /// Fill `scores[g * stride + j]` with the extremeness score of gene `g`
    /// under arrangement `j`, walking genes tile by tile through the run's
    /// scorer.
    fn score_batch(
        &self,
        labels_bufs: &[Vec<u8>],
        scratch: &mut ScorerScratch,
        scores: &mut [f64],
        stride: usize,
    ) {
        let genes = self.genes;
        let k = labels_bufs.len();
        self.scorer.begin_batch(labels_bufs, scratch);
        let mut tile_start = 0usize;
        while tile_start < genes {
            let tile_end = (tile_start + GENE_TILE).min(genes);
            self.scorer
                .score_tile(labels_bufs, tile_start..tile_end, scratch, scores, stride);
            // Statistic → extremeness score while the tile is hot.
            for g in tile_start..tile_end {
                let slots = &mut scores[g * stride..g * stride + k];
                for slot in slots.iter_mut() {
                    *slot = self.side.score(*slot);
                }
            }
            tile_start = tile_end;
        }
    }

    /// Raw and step-down (successive-maxima) exceedance counts over a scored
    /// batch of `k` arrangements.
    fn count_batch(&self, scores: &[f64], stride: usize, k: usize, acc: &mut CountAccumulator) {
        let genes = self.genes();
        for g in 0..genes {
            let observed = self.obs_scores[g] - EPSILON;
            for &score in &scores[g * stride..g * stride + k] {
                if score >= observed {
                    acc.count_raw[g] += 1;
                }
            }
        }
        if self.single_step() {
            // Single-step (`tmax`): one global max per arrangement, compared
            // against every ordered observed score — the batched twin of the
            // branch in `MaxTContext::accumulate`.
            for j in 0..k {
                let mut gmax = f64::NEG_INFINITY;
                for g in 0..genes {
                    let s = scores[g * stride + j];
                    if s > gmax {
                        gmax = s;
                    }
                }
                for i in 0..genes {
                    if gmax >= self.obs_scores_ordered[i] - EPSILON {
                        acc.count_adj[i] += 1;
                    }
                }
            }
            acc.n_perm += k as u64;
            return;
        }
        for j in 0..k {
            let mut running_max = f64::NEG_INFINITY;
            for i in (0..genes).rev() {
                let s = scores[self.order[i] * stride + j];
                if s > running_max {
                    running_max = s;
                }
                if running_max >= self.obs_scores_ordered[i] - EPSILON {
                    acc.count_adj[i] += 1;
                }
            }
        }
        acc.n_perm += k as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxt::serial::mt_maxt;
    use crate::options::{KernelChoice, Precision, SamplingMode, TestMethod};
    use crate::side::Side;
    use crate::stats::prepare_matrix;

    /// Bitwise result equality: `MaxTResult`'s derived `PartialEq` treats
    /// NaN ≠ NaN, but the engine's guarantee is bit-for-bit — including the
    /// NaN p-values of non-computable genes.
    fn assert_bitwise_eq(a: &MaxTResult, b: &MaxTResult, what: &str) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(a.order, b.order, "{what}: order");
        assert_eq!(a.b_used, b.b_used, "{what}: b_used");
        assert_eq!(bits(&a.teststat), bits(&b.teststat), "{what}: teststat");
        assert_eq!(bits(&a.rawp), bits(&b.rawp), "{what}: rawp");
        assert_eq!(bits(&a.adjp), bits(&b.adjp), "{what}: adjp");
    }

    fn test_data() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            5,
            8,
            vec![
                1.0,
                2.0,
                1.5,
                2.5,
                9.0,
                10.0,
                9.5,
                10.5, // strong signal
                5.0,
                4.0,
                6.0,
                5.5,
                4.5,
                5.2,
                5.8,
                4.9, // flat
                2.0,
                8.0,
                3.0,
                7.0,
                2.5,
                7.5,
                3.5,
                6.5, // noisy
                1.0,
                f64::NAN,
                2.0,
                1.5,
                3.0,
                4.0,
                f64::NAN,
                3.5, // missing cells → NA-adjusted fast path
                7.7,
                7.7,
                7.7,
                7.7,
                7.7,
                7.7,
                7.7,
                7.7, // constant → NaN statistic
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 0, 1, 1, 1, 1])
    }

    #[test]
    fn split_evenly_covers_and_balances() {
        for total in [0u64, 1, 5, 23, 150] {
            for parts in [1u64, 2, 3, 7] {
                let runs: Vec<(u64, u64)> =
                    (0..parts).map(|i| split_evenly(total, parts, i)).collect();
                let mut expect = 0u64;
                for &(off, count) in &runs {
                    assert_eq!(off, expect);
                    expect += count;
                }
                assert_eq!(expect, total);
                let counts: Vec<u64> = runs.iter().map(|r| r.1).collect();
                let min = counts.iter().min().unwrap();
                let max = counts.iter().max().unwrap();
                assert!(max - min <= 1, "total={total} parts={parts}: {counts:?}");
            }
        }
    }

    #[test]
    fn split_chunk_clamps_workers_to_take() {
        assert!(split_chunk(5, 0, 4).is_empty());
        let subs = split_chunk(10, 3, 8);
        assert_eq!(subs, vec![(10, 1), (11, 1), (12, 1)]);
        let subs = split_chunk(0, 10, 3);
        assert_eq!(subs, vec![(0, 4), (4, 3), (7, 3)]);
    }

    #[test]
    fn tree_merge_equals_sequential_merge() {
        let mk = |r: u64| CountAccumulator {
            count_raw: vec![r, 2 * r],
            count_adj: vec![3 * r, r],
            n_perm: r,
        };
        for n in 1..=9usize {
            let parts: Vec<CountAccumulator> = (1..=n as u64).map(mk).collect();
            let mut sequential = CountAccumulator::new(2);
            for p in &parts {
                sequential.merge(p);
            }
            assert_eq!(tree_merge(parts).unwrap(), sequential, "n={n}");
        }
        assert!(tree_merge(Vec::new()).is_none());
    }

    #[test]
    fn explicit_config_resolves_auto_values() {
        let cfg = EngineConfig::explicit(0, 0);
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.batch, DEFAULT_BATCH);
        let cfg = EngineConfig::explicit(3, 7);
        assert_eq!(
            cfg,
            EngineConfig {
                threads: 3,
                batch: 7
            }
        );
        assert_eq!(EngineConfig::serial().threads, 1);
    }

    #[test]
    fn batched_accumulate_matches_reference_for_every_batch_size() {
        let (data, classlabel) = test_data();
        for method in [TestMethod::T, TestMethod::Wilcoxon] {
            for choice in [KernelChoice::Fast, KernelChoice::Scalar] {
                let labels = ClassLabels::new(classlabel.clone(), method).unwrap();
                let opts = PmaxtOptions::default().test(method).permutations(40);
                let prepared = prepare_matrix(&data, method, false);
                let ctx = MaxTContext::with_scorer(
                    &prepared,
                    &labels,
                    method,
                    Side::Abs,
                    choice,
                    Precision::F64,
                );
                let mut reference = CountAccumulator::new(5);
                let mut gen = build_generator(&labels, &opts, 40).unwrap();
                ctx.accumulate(&mut *gen, u64::MAX, &mut reference);
                for batch in [1usize, 2, 3, 7, 32, 64] {
                    let mut acc = CountAccumulator::new(5);
                    let mut gen = build_generator(&labels, &opts, 40).unwrap();
                    let done = ctx.accumulate_batched(&mut *gen, u64::MAX, batch, &mut acc);
                    assert_eq!(done, 40);
                    assert_eq!(acc, reference, "{method:?} {choice:?} batch={batch}");
                }
            }
        }
    }

    #[test]
    fn accumulate_batched_respects_take_limit() {
        let (data, classlabel) = test_data();
        let labels = ClassLabels::new(classlabel, TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(10);
        let prepared = prepare_matrix(&data, TestMethod::T, false);
        let ctx = MaxTContext::new(&prepared, &labels, TestMethod::T, Side::Abs);
        let mut gen = build_generator(&labels, &opts, 10).unwrap();
        let mut acc = CountAccumulator::new(5);
        assert_eq!(ctx.accumulate_batched(&mut *gen, 4, 3, &mut acc), 4);
        assert_eq!(acc.n_perm, 4);
        assert_eq!(ctx.accumulate_batched(&mut *gen, 100, 3, &mut acc), 6);
        assert_eq!(acc.n_perm, 10);
    }

    #[test]
    fn chunked_threaded_run_matches_serial_reference() {
        // Ground truth from the one-permutation-at-a-time loop, not from
        // `mt_maxt` (which itself dispatches through this engine).
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions::default().permutations(50);
        let (labels, b, prepared) = prepare_run(&data, &classlabel, &opts).unwrap();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        let mut gen = build_generator(&labels, &opts, b).unwrap();
        let mut acc = CountAccumulator::new(5);
        ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
        let serial = ctx.finalize(&acc);
        for threads in [1usize, 2, 3, 8] {
            for batch in [1usize, 4, 16] {
                let cfg = EngineConfig { threads, batch };
                let run = maxt_with_config(&data, &classlabel, &opts, cfg).unwrap();
                assert_bitwise_eq(&run, &serial, &format!("threads={threads} batch={batch}"));
            }
        }
    }

    #[test]
    fn worker_stats_cover_the_chunk_in_order() {
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions::default().permutations(30);
        let (labels, b, prepared) = prepare_run(&data, &classlabel, &opts).unwrap();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        let cfg = EngineConfig {
            threads: 4,
            batch: 8,
        };
        let run = accumulate_chunk(&ctx, &labels, &opts, b, 5, 20, cfg).unwrap();
        assert_eq!(run.counts.n_perm, 20);
        assert_eq!(run.workers.len(), 4);
        let mut expect = 5u64;
        for (w, stat) in run.workers.iter().enumerate() {
            assert_eq!(stat.worker, w);
            assert_eq!(stat.start, expect);
            expect += stat.take;
        }
        assert_eq!(expect, 25);
    }

    #[test]
    fn empty_chunk_yields_empty_run() {
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions::default().permutations(10);
        let (labels, b, prepared) = prepare_run(&data, &classlabel, &opts).unwrap();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        let run = accumulate_chunk(&ctx, &labels, &opts, b, 3, 0, EngineConfig::serial()).unwrap();
        assert_eq!(run.counts.n_perm, 0);
        assert!(run.workers.is_empty());
    }

    #[test]
    fn hooked_chunk_matches_hookless_and_reports_progress() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions::default().permutations(40);
        let (labels, b, prepared) = prepare_run(&data, &classlabel, &opts).unwrap();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        let cfg = EngineConfig {
            threads: 3,
            batch: 7,
        };
        let plain = accumulate_chunk(&ctx, &labels, &opts, b, 2, 30, cfg).unwrap();
        let progressed = AtomicU64::new(0);
        let cancel = AtomicBool::new(false);
        let hooks = ChunkHooks {
            cancel: Some(&cancel),
            progress: Some(&|n| {
                progressed.fetch_add(n, Ordering::Relaxed);
            }),
        };
        let hooked = accumulate_chunk_hooked(&ctx, &labels, &opts, b, 2, 30, cfg, hooks).unwrap();
        assert_eq!(hooked.counts, plain.counts, "hooks must not change counts");
        assert_eq!(progressed.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn panicking_progress_hook_surfaces_typed_error_not_panic() {
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions::default().permutations(40);
        let (labels, b, prepared) = prepare_run(&data, &classlabel, &opts).unwrap();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        let cfg = EngineConfig {
            threads: 2,
            batch: 7,
        };
        let hooks = ChunkHooks {
            cancel: None,
            progress: Some(&|_| panic!("hook bug")),
        };
        // Silence the default panic hook's backtrace spam for the expected
        // per-worker panics; restore it before asserting.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = accumulate_chunk_hooked(&ctx, &labels, &opts, b, 0, 30, cfg, hooks);
        std::panic::set_hook(prev);
        let err = outcome.unwrap_err();
        assert!(
            matches!(&err, Error::Comm(m) if m.contains("progress hook panicked")),
            "got {err:?}"
        );
    }

    #[test]
    fn pre_set_cancel_flag_aborts_with_typed_error() {
        use std::sync::atomic::AtomicBool;
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions::default().permutations(40);
        let (labels, b, prepared) = prepare_run(&data, &classlabel, &opts).unwrap();
        let ctx = MaxTContext::new(&prepared, &labels, opts.test, opts.side);
        let cancel = AtomicBool::new(true);
        let hooks = ChunkHooks {
            cancel: Some(&cancel),
            progress: None,
        };
        let err =
            accumulate_chunk_hooked(&ctx, &labels, &opts, b, 0, b, EngineConfig::serial(), hooks)
                .unwrap_err();
        assert!(matches!(err, Error::Cancelled));
    }

    #[test]
    fn stored_sampling_mode_agrees_across_geometries() {
        let (data, classlabel) = test_data();
        let opts = PmaxtOptions {
            sampling: SamplingMode::Stored,
            b: 33,
            ..PmaxtOptions::default()
        };
        let serial = mt_maxt(&data, &classlabel, &opts).unwrap();
        let threaded = maxt_with_config(
            &data,
            &classlabel,
            &opts,
            EngineConfig {
                threads: 3,
                batch: 5,
            },
        )
        .unwrap();
        assert_bitwise_eq(&threaded, &serial, "stored sampling");
    }
}
