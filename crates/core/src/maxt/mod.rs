//! Westfall–Young step-down maxT adjusted p-values (Ge, Dudoit & Speed 2003;
//! Westfall & Young 1993) — the computational core shared by the serial
//! reference (`mt_maxt`) and the parallel driver (`pmaxt`).
//!
//! For each permutation *b* the kernel computes every gene's statistic,
//! transforms it into an extremeness score (see [`crate::side::Side`]), forms
//! the successive maxima over the significance-ordered genes from the least
//! extreme upwards, and counts exceedances of the observed scores. The
//! identity labelling is permutation index 0 and counts exactly once, so
//! p-values are never zero (they live in `[1/B, 1]`).

pub mod counts;
pub mod engine;
pub mod minp;
pub mod result;
pub mod sample;
pub mod sequential;
pub mod serial;

pub use counts::CountAccumulator;
pub use engine::{maxt_threaded, maxt_with_config, EngineConfig};
pub use result::{MaxTResult, MaxTRow};

use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::options::{KernelChoice, Precision, TestMethod};
use crate::perm::PermutationGenerator;
use crate::side::Side;
use crate::stats::scorer::{build_scorer, Scorer};

/// Comparison slack absorbing floating-point noise between the observed and
/// permuted statistics, as in the `multtest` C implementation.
pub const EPSILON: f64 = 1e-10;

/// Stable significance ordering: gene indices by decreasing score, ties by
/// index, non-computable (−∞) scores last.
pub fn significance_order(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores contain no NaN (mapped to -inf)")
    });
    order
}

/// Per-run state binding the prepared data, statistic, side and observed
/// scores. Both the serial loop and each parallel rank construct one; because
/// construction is deterministic, every rank derives the identical gene
/// ordering, which the count reduction relies on.
#[derive(Debug)]
pub struct MaxTContext<'a> {
    /// The run's statistic evaluator: the method's fast sufficient-statistic
    /// scorer, or the reference scalar scorer under a debug override.
    scorer: Box<dyn Scorer + 'a>,
    side: Side,
    genes: usize,
    cols: usize,
    /// Observed statistic per gene (original order).
    obs_stats: Vec<f64>,
    /// Observed extremeness score per gene (original order).
    obs_scores: Vec<f64>,
    /// Significance ordering.
    order: Vec<usize>,
    /// Observed scores in `order` order.
    obs_scores_ordered: Vec<f64>,
    /// Single-step max-statistic counting (`test = "tmax"`, per PERMUTOOLS):
    /// every gene's adjusted count compares against the *global* per-
    /// permutation maximum instead of the step-down successive maxima.
    single_step: bool,
}

impl<'a> MaxTContext<'a> {
    /// Build from a **prepared** matrix (see [`crate::stats::prepare_matrix`])
    /// and validated labels, with automatic scorer selection.
    pub fn new(data: &'a Matrix, labels: &ClassLabels, method: TestMethod, side: Side) -> Self {
        Self::with_scorer(
            data,
            labels,
            method,
            side,
            KernelChoice::Auto,
            Precision::F64,
        )
    }

    /// Build with an explicit scorer choice. `Auto` and `Fast` select the
    /// method's fast sufficient-statistic scorer; `Scalar` forces the
    /// reference per-column scorer (the equivalence-testing override).
    /// `precision` selects the fast path's accumulation element (`f64` is
    /// the bitwise-reproducible default). The `SPRINT_KERNEL` and
    /// `SPRINT_PRECISION` environment variables, when set to valid choices,
    /// take precedence over the arguments.
    pub fn with_scorer(
        data: &'a Matrix,
        labels: &ClassLabels,
        method: TestMethod,
        side: Side,
        choice: KernelChoice,
        precision: Precision,
    ) -> Self {
        let scorer = build_scorer(data, labels, method, choice, precision);
        let genes = data.rows();
        // Observed statistics go through the same scorer as the permuted
        // ones so the identity permutation always counts exactly once,
        // whichever scorer is active.
        let mut obs_stats = vec![f64::NAN; genes];
        let mut scratch = scorer.make_scratch();
        scorer.stats_into(labels.as_slice(), &mut scratch, &mut obs_stats);
        let obs_scores: Vec<f64> = obs_stats.iter().map(|&s| side.score(s)).collect();
        let order = significance_order(&obs_scores);
        let obs_scores_ordered = order.iter().map(|&g| obs_scores[g]).collect();
        MaxTContext {
            scorer,
            side,
            genes,
            cols: data.cols(),
            obs_stats,
            obs_scores,
            order,
            obs_scores_ordered,
            single_step: method.single_step_max(),
        }
    }

    /// Whether adjusted counts use the single-step global max (`tmax`)
    /// instead of the Westfall–Young step-down successive maxima.
    pub fn single_step(&self) -> bool {
        self.single_step
    }

    /// Whether a fast sufficient-statistic scorer is active for this run.
    pub fn uses_fast_scorer(&self) -> bool {
        self.scorer.path() != "scalar"
    }

    /// The active scorer's path name (`"scalar"`, `"two-sample"`, …).
    pub fn scorer_path(&self) -> &'static str {
        self.scorer.path()
    }

    /// The significance ordering (most extreme first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Observed statistics in original gene order.
    pub fn observed_stats(&self) -> &[f64] {
        &self.obs_stats
    }

    /// Observed extremeness scores in original gene order.
    pub fn observed_scores(&self) -> &[f64] {
        &self.obs_scores
    }

    /// Number of genes.
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Consume up to `take` permutations from `gen`, accumulating exceedance
    /// counts into `acc`. Returns the number of permutations processed.
    ///
    /// This is the paper's "main kernel" section.
    pub fn accumulate(
        &self,
        gen: &mut dyn PermutationGenerator,
        take: u64,
        acc: &mut CountAccumulator,
    ) -> u64 {
        assert_eq!(acc.genes(), self.genes(), "accumulator size mismatch");
        let genes = self.genes();
        let mut labels_buf = vec![0u8; self.cols];
        let mut scratch = self.scorer.make_scratch();
        let mut scores = vec![0.0f64; genes];
        let mut done = 0u64;
        while done < take {
            if !gen.next_into(&mut labels_buf) {
                break;
            }
            // Statistics for every gene under this labelling through the
            // run's scorer, then scores in place.
            self.scorer
                .stats_into(&labels_buf, &mut scratch, &mut scores);
            for slot in scores.iter_mut() {
                *slot = self.side.score(*slot);
            }
            // Raw counts (original gene order).
            for (g, &score) in scores.iter().enumerate() {
                if score >= self.obs_scores[g] - EPSILON {
                    acc.count_raw[g] += 1;
                }
            }
            if self.single_step {
                // Single-step: one global max per permutation, compared
                // against every ordered observed score.
                let mut gmax = f64::NEG_INFINITY;
                for &s in scores.iter() {
                    if s > gmax {
                        gmax = s;
                    }
                }
                for i in 0..genes {
                    if gmax >= self.obs_scores_ordered[i] - EPSILON {
                        acc.count_adj[i] += 1;
                    }
                }
            } else {
                // Successive maxima from the least extreme ordered gene
                // upwards (Westfall–Young step-down).
                let mut running_max = f64::NEG_INFINITY;
                for i in (0..genes).rev() {
                    let s = scores[self.order[i]];
                    if s > running_max {
                        running_max = s;
                    }
                    if running_max >= self.obs_scores_ordered[i] - EPSILON {
                        acc.count_adj[i] += 1;
                    }
                }
            }
            acc.n_perm += 1;
            done += 1;
        }
        done
    }

    /// Turn reduced counts into p-values: divide by the permutation count and
    /// enforce step-down monotonicity; genes whose observed statistic was not
    /// computable get `NaN` p-values (the `mt.maxT` NA behaviour).
    pub fn finalize(&self, acc: &CountAccumulator) -> MaxTResult {
        assert!(acc.n_perm > 0, "no permutations accumulated");
        let b = acc.n_perm as f64;
        let genes = self.genes();
        let mut rawp = vec![f64::NAN; genes];
        for (g, p) in rawp.iter_mut().enumerate() {
            if self.obs_scores[g] > f64::NEG_INFINITY {
                *p = acc.count_raw[g] as f64 / b;
            }
        }
        // Adjusted p-values in order, with monotonic step-down enforcement.
        let mut adj_ordered: Vec<f64> = acc.count_adj.iter().map(|&c| c as f64 / b).collect();
        for i in 1..genes {
            if adj_ordered[i] < adj_ordered[i - 1] {
                adj_ordered[i] = adj_ordered[i - 1];
            }
        }
        let mut adjp = vec![f64::NAN; genes];
        for (i, &g) in self.order.iter().enumerate() {
            if self.obs_scores[g] > f64::NEG_INFINITY {
                adjp[g] = adj_ordered[i];
            }
        }
        MaxTResult {
            teststat: self.obs_stats.clone(),
            rawp,
            adjp,
            order: self.order.clone(),
            b_used: acc.n_perm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::PmaxtOptions;
    use crate::perm::{build_generator, resolve_permutation_count};
    use crate::stats::prepare_matrix;

    fn run_complete_two_sample(data: Vec<f64>, genes: usize) -> MaxTResult {
        let m = Matrix::from_vec(genes, 4, data).unwrap();
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(0);
        let b = resolve_permutation_count(&labels, &opts).unwrap();
        let prepared = prepare_matrix(&m, TestMethod::T, false);
        let ctx = MaxTContext::new(&prepared, &labels, TestMethod::T, Side::Abs);
        let mut gen = build_generator(&labels, &opts, b).unwrap();
        let mut acc = CountAccumulator::new(genes);
        let done = ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
        assert_eq!(done, b);
        ctx.finalize(&acc)
    }

    #[test]
    fn exact_p_value_single_gene() {
        // Gene [1,2,3,4] with labels [0,0,1,1]: of the 6 complete splits,
        // exactly 2 achieve |t| = max (the observed split and its mirror), so
        // rawp = adjp = 2/6.
        let r = run_complete_two_sample(vec![1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(r.b_used, 6);
        assert!((r.rawp[0] - 2.0 / 6.0).abs() < 1e-12);
        assert!((r.adjp[0] - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn significance_order_sorts_descending_with_ties_stable() {
        let scores = [1.0, 3.0, f64::NEG_INFINITY, 3.0, 2.0];
        let order = significance_order(&scores);
        assert_eq!(order, vec![1, 3, 4, 0, 2]);
    }

    #[test]
    fn adjp_at_least_rawp_and_monotone() {
        // Two genes, one strongly differential, one noise.
        let r = run_complete_two_sample(vec![1.0, 2.0, 30.0, 40.0, 5.0, 1.0, 4.0, 2.0], 2);
        for g in 0..2 {
            assert!(
                r.adjp[g] >= r.rawp[g] - 1e-12,
                "adjp {} < rawp {}",
                r.adjp[g],
                r.rawp[g]
            );
        }
        // Monotone along the significance order.
        let rows: Vec<_> = r.by_significance().collect();
        for w in rows.windows(2) {
            assert!(w[1].adjp >= w[0].adjp - 1e-12);
        }
    }

    #[test]
    fn identity_permutation_guarantees_min_p() {
        // Every p-value is at least 1/B because the identity counts once.
        let r = run_complete_two_sample(vec![1.0, 2.0, 100.0, 101.0], 1);
        assert!(r.rawp[0] >= 1.0 / r.b_used as f64 - 1e-12);
        assert!(r.adjp[0] >= 1.0 / r.b_used as f64 - 1e-12);
    }

    #[test]
    fn non_computable_gene_gets_nan() {
        // Second gene is constant: t undefined -> NaN p-values, but the other
        // gene is unaffected.
        let r = run_complete_two_sample(vec![1.0, 2.0, 30.0, 40.0, 7.0, 7.0, 7.0, 7.0], 2);
        assert!(r.rawp[1].is_nan());
        assert!(r.adjp[1].is_nan());
        assert!(r.rawp[0].is_finite());
        // NaN gene sorts last.
        assert_eq!(r.order[1], 1);
    }

    #[test]
    fn accumulate_respects_take_limit() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(10);
        let prepared = prepare_matrix(&m, TestMethod::T, false);
        let ctx = MaxTContext::new(&prepared, &labels, TestMethod::T, Side::Abs);
        let mut gen = build_generator(&labels, &opts, 10).unwrap();
        let mut acc = CountAccumulator::new(1);
        assert_eq!(ctx.accumulate(&mut *gen, 4, &mut acc), 4);
        assert_eq!(acc.n_perm, 4);
        assert_eq!(ctx.accumulate(&mut *gen, 100, &mut acc), 6);
        assert_eq!(acc.n_perm, 10);
    }

    #[test]
    fn split_accumulation_equals_single_pass() {
        // Accumulating 0..B in one go must equal accumulating in chunks with
        // skip-ahead — the foundation of the parallel distribution.
        let m = Matrix::from_vec(
            2,
            6,
            vec![1.0, 5.0, 2.0, 6.0, 3.0, 7.0, 9.0, 1.0, 8.0, 2.0, 7.0, 3.0],
        )
        .unwrap();
        let labels = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::T).unwrap();
        let opts = PmaxtOptions::default().permutations(25);
        let prepared = prepare_matrix(&m, TestMethod::T, false);
        let ctx = MaxTContext::new(&prepared, &labels, TestMethod::T, Side::Abs);

        let mut gen = build_generator(&labels, &opts, 25).unwrap();
        let mut whole = CountAccumulator::new(2);
        ctx.accumulate(&mut *gen, u64::MAX, &mut whole);

        let mut merged = CountAccumulator::new(2);
        let chunks = [(0u64, 7u64), (7, 10), (17, 8)];
        for (start, take) in chunks {
            let mut g = build_generator(&labels, &opts, 25).unwrap();
            g.skip(start);
            let mut part = CountAccumulator::new(2);
            ctx.accumulate(&mut *g, take, &mut part);
            merged.merge(&part);
        }
        assert_eq!(merged, whole);
        assert_eq!(ctx.finalize(&merged), ctx.finalize(&whole));
    }

    #[test]
    fn scorer_dispatch_follows_choice_and_method() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let auto = MaxTContext::with_scorer(
            &m,
            &labels,
            TestMethod::T,
            Side::Abs,
            KernelChoice::Auto,
            Precision::F64,
        );
        assert!(auto.uses_fast_scorer());
        assert_eq!(auto.scorer_path(), "two-sample");
        let scalar = MaxTContext::with_scorer(
            &m,
            &labels,
            TestMethod::T,
            Side::Abs,
            KernelChoice::Scalar,
            Precision::F64,
        );
        assert!(!scalar.uses_fast_scorer());
        assert_eq!(scalar.scorer_path(), "scalar");
        // Every method has a fast form now, paired t included.
        let p_labels = ClassLabels::new(vec![0, 1, 0, 1], TestMethod::PairT).unwrap();
        let pt = MaxTContext::with_scorer(
            &m,
            &p_labels,
            TestMethod::PairT,
            Side::Abs,
            KernelChoice::Fast,
            Precision::F64,
        );
        assert!(pt.uses_fast_scorer());
        assert_eq!(pt.scorer_path(), "pairt");
    }

    #[test]
    fn fast_and_scalar_scorers_produce_identical_counts() {
        // Mixed NA / NA-free rows: raw and adjusted exceedance counts must be
        // byte-identical between scorers for every method.
        let data = vec![
            1.0,
            5.0,
            2.0,
            6.0,
            3.0,
            7.0, // clean
            9.0,
            f64::NAN,
            8.0,
            2.0,
            7.0,
            3.0, // NA → scalar fallback row
            0.5,
            0.4,
            0.6,
            0.55,
            0.45,
            0.62, // clean, weak signal
        ];
        let m = Matrix::from_vec(3, 6, data).unwrap();
        for method in [
            TestMethod::T,
            TestMethod::TEqualVar,
            TestMethod::Wilcoxon,
            TestMethod::F,
            TestMethod::PairT,
            TestMethod::BlockF,
            TestMethod::Corr,
            TestMethod::TMax,
        ] {
            let raw = if method == TestMethod::F || method == TestMethod::Corr {
                vec![0, 0, 1, 1, 2, 2]
            } else {
                vec![0, 1, 0, 1, 0, 1]
            };
            let labels = ClassLabels::new(raw, method).unwrap();
            let opts = PmaxtOptions::default().permutations(64);
            let prepared = prepare_matrix(&m, method, false);
            for side in [Side::Abs, Side::Upper, Side::Lower] {
                let fast = MaxTContext::with_scorer(
                    &prepared,
                    &labels,
                    method,
                    side,
                    KernelChoice::Fast,
                    Precision::F64,
                );
                let scalar = MaxTContext::with_scorer(
                    &prepared,
                    &labels,
                    method,
                    side,
                    KernelChoice::Scalar,
                    Precision::F64,
                );
                assert!(fast.uses_fast_scorer());
                assert!(!scalar.uses_fast_scorer());
                let mut acc_f = CountAccumulator::new(3);
                let mut acc_s = CountAccumulator::new(3);
                let mut gen = build_generator(&labels, &opts, 64).unwrap();
                fast.accumulate(&mut *gen, u64::MAX, &mut acc_f);
                let mut gen = build_generator(&labels, &opts, 64).unwrap();
                scalar.accumulate(&mut *gen, u64::MAX, &mut acc_s);
                assert_eq!(acc_f, acc_s, "{method:?} {side:?}");
                // Non-computable genes carry NaN statistics and p-values, so
                // compare field-wise with NaN-aware equality. p-values derive
                // from the (identical) counts and must match exactly; the
                // statistics may ulp-drift on NA rows.
                let rf = fast.finalize(&acc_f);
                let rs = scalar.finalize(&acc_s);
                let same = |a: f64, b: f64, tol: f64| {
                    (a.is_nan() && b.is_nan()) || (a - b).abs() <= tol * b.abs().max(1.0)
                };
                assert_eq!(rf.order, rs.order, "{method:?} {side:?}");
                assert_eq!(rf.b_used, rs.b_used);
                for g in 0..3 {
                    assert!(
                        same(rf.rawp[g], rs.rawp[g], 0.0),
                        "{method:?} {side:?} rawp {g}"
                    );
                    assert!(
                        same(rf.adjp[g], rs.adjp[g], 0.0),
                        "{method:?} {side:?} adjp {g}"
                    );
                    assert!(
                        same(rf.teststat[g], rs.teststat[g], 1e-12),
                        "{method:?} {side:?} teststat {g}: {} vs {}",
                        rf.teststat[g],
                        rs.teststat[g]
                    );
                }
            }
        }
    }

    #[test]
    fn observed_stats_match_scalar_path() {
        let m = Matrix::from_vec(
            2,
            6,
            vec![1.0, 5.0, 2.0, 6.0, 3.0, 7.0, 9.0, 1.0, 8.0, 2.0, 7.0, 3.0],
        )
        .unwrap();
        let labels = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::T).unwrap();
        let fast = MaxTContext::with_scorer(
            &m,
            &labels,
            TestMethod::T,
            Side::Abs,
            KernelChoice::Fast,
            Precision::F64,
        );
        let scalar = MaxTContext::with_scorer(
            &m,
            &labels,
            TestMethod::T,
            Side::Abs,
            KernelChoice::Scalar,
            Precision::F64,
        );
        for (a, b) in fast.observed_stats().iter().zip(scalar.observed_stats()) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }
        assert_eq!(fast.order(), scalar.order());
    }

    #[test]
    fn tmax_single_step_dominates_step_down() {
        // Single-step adjusted p-values are >= the step-down ones gene by
        // gene (the global max dominates every successive max), and both use
        // the same per-gene Welch statistics.
        let m = Matrix::from_vec(
            3,
            6,
            vec![
                1.0, 5.0, 2.0, 6.0, 3.0, 7.0, 9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 0.5, 0.4, 0.6, 0.55,
                0.45, 0.62,
            ],
        )
        .unwrap();
        let run = |method: TestMethod| {
            let labels = ClassLabels::new(vec![0, 1, 0, 1, 0, 1], method).unwrap();
            let opts = PmaxtOptions::default().permutations(200);
            let prepared = prepare_matrix(&m, method, false);
            let ctx = MaxTContext::new(&prepared, &labels, method, Side::Abs);
            assert_eq!(ctx.single_step(), method == TestMethod::TMax);
            let mut gen = build_generator(&labels, &opts, 200).unwrap();
            let mut acc = CountAccumulator::new(3);
            ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
            ctx.finalize(&acc)
        };
        let step_down = run(TestMethod::T);
        let single = run(TestMethod::TMax);
        assert_eq!(step_down.order, single.order);
        for g in 0..3 {
            assert_eq!(
                step_down.teststat[g].to_bits(),
                single.teststat[g].to_bits()
            );
            assert_eq!(step_down.rawp[g].to_bits(), single.rawp[g].to_bits());
            assert!(
                single.adjp[g] >= step_down.adjp[g] - 1e-12,
                "gene {g}: single-step {} < step-down {}",
                single.adjp[g],
                step_down.adjp[g]
            );
        }
        // The most significant gene agrees exactly: its successive max IS the
        // global max.
        let top = step_down.order[0];
        assert_eq!(step_down.adjp[top].to_bits(), single.adjp[top].to_bits());
    }

    #[test]
    #[should_panic(expected = "no permutations accumulated")]
    fn finalize_rejects_empty_accumulator() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let labels = ClassLabels::new(vec![0, 0, 1, 1], TestMethod::T).unwrap();
        let prepared = prepare_matrix(&m, TestMethod::T, false);
        let ctx = MaxTContext::new(&prepared, &labels, TestMethod::T, Side::Abs);
        let acc = CountAccumulator::new(1);
        let _ = ctx.finalize(&acc);
    }
}
