//! Step-down **minP** adjusted p-values — extension beyond the paper.
//!
//! `mt.maxT`'s sibling in `multtest` is `mt.minP` (Ge, Dudoit & Speed 2003,
//! procedure based on successive *minima of raw p-values* instead of maxima
//! of statistics). The paper's future work opens with "the addition of more
//! parallelized functions"; minP is the most natural next one, and the
//! permutation-distribution machinery (generators with skip-ahead, identity
//! handled once) is reused unchanged.
//!
//! minP is *balanced* across genes with different null distributions —
//! p-value scale instead of statistic scale — at the cost of materializing
//! the full genes × B score matrix (the same trade-off `mt.minP` makes). The
//! implementation refuses workloads above a configurable memory budget
//! rather than thrashing.
//!
//! Algorithm (complete or sampled permutation set, identity at index 0):
//!
//! 1. compute the score matrix `z[g][b]`;
//! 2. per gene, the permutation raw p-value `p[g][b] = #{b': z[g][b'] ≥
//!    z[g][b]} / B` via a sorted copy of the gene's scores;
//! 3. order genes by increasing observed raw p (ties: larger observed score
//!    first);
//! 4. per permutation, form successive minima of `p[·][b]` from the least
//!    significant ordered gene upwards and count `q_i,b ≤ p_obs(i)`;
//! 5. divide by B and enforce step-down monotonicity.

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::engine::DEFAULT_BATCH;
use crate::maxt::result::MaxTResult;
use crate::maxt::EPSILON;
use crate::options::PmaxtOptions;
use crate::perm::{build_generator, resolve_permutation_count};
use crate::stats::prepare_matrix;
use crate::stats::scorer::build_scorer;

/// Default budget for the score matrix: 512 MiB.
pub const DEFAULT_MINP_BUDGET_BYTES: usize = 512 << 20;

/// Run the step-down minP procedure. The result reuses [`MaxTResult`]
/// (`teststat`, `rawp`, `adjp`, significance `order`); `rawp` is the
/// permutation raw p-value of each gene, identical in definition to maxT's.
///
/// `budget_bytes` caps the genes × B score matrix (`None` = 512 MiB).
pub fn mt_minp(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    budget_bytes: Option<usize>,
) -> Result<MaxTResult> {
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    let owned_na;
    let data = match opts.na {
        Some(code) => {
            owned_na =
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?;
            &owned_na
        }
        None => data,
    };
    let b = resolve_permutation_count(&labels, opts)?;
    let genes = data.rows();
    let need = genes
        .checked_mul(b as usize)
        .and_then(|n| n.checked_mul(std::mem::size_of::<f64>()))
        .ok_or_else(|| Error::BadMatrix("minP score matrix size overflows".into()))?;
    let budget = budget_bytes.unwrap_or(DEFAULT_MINP_BUDGET_BYTES);
    if need > budget {
        return Err(Error::TooManyPermutations {
            total: Some(b as u128),
            max: (budget / (genes * std::mem::size_of::<f64>())) as u64,
        });
    }

    let prepared = prepare_matrix(data, opts.test, opts.nonpara);
    let scorer = build_scorer(&prepared, &labels, opts.test, opts.kernel, opts.precision);
    let side = opts.side;

    // 1. Score matrix, gene-major: scores[g * b + j], filled batch by batch
    // through the run's scorer. Statistics are written at a column offset via
    // an `&mut scores[j..]` window with stride `b`, so `score_tile`'s
    // `g·stride + j_local` lands on the global `g·b + j + j_local` cell.
    let mut gen = build_generator(&labels, opts, b)?;
    let bu = b as usize;
    let mut scores = vec![f64::NEG_INFINITY; genes * bu];
    let batch = DEFAULT_BATCH.min(bu).max(1);
    let mut labels_bufs: Vec<Vec<u8>> = vec![vec![0u8; data.cols()]; batch];
    let mut scratch = scorer.make_scratch();
    let mut obs_stats = vec![f64::NAN; genes];
    let mut j = 0usize;
    while j < bu {
        let want = (bu - j).min(batch);
        let mut k = 0usize;
        while k < want && gen.next_into(&mut labels_bufs[k]) {
            k += 1;
        }
        if k == 0 {
            break;
        }
        scorer.begin_batch(&labels_bufs[..k], &mut scratch);
        scorer.score_tile(
            &labels_bufs[..k],
            0..genes,
            &mut scratch,
            &mut scores[j..],
            bu,
        );
        if j == 0 {
            // Raw observed statistics: the identity permutation's column,
            // before the in-place extremeness transform below.
            for g in 0..genes {
                obs_stats[g] = scores[g * bu];
            }
        }
        for g in 0..genes {
            for slot in &mut scores[g * bu + j..g * bu + j + k] {
                *slot = side.score(*slot);
            }
        }
        j += k;
    }
    debug_assert_eq!(j, bu);

    Ok(minp_from_scores(scores, obs_stats, side, b))
}

/// Steps 2–5 of the minP procedure, given the full gene-major score matrix
/// (`scores[g * B + j]`) and the observed statistics. Shared by the serial
/// [`mt_minp`] and the parallel [`pminp`].
pub(crate) fn minp_from_scores(
    scores: Vec<f64>,
    obs_stats: Vec<f64>,
    side: crate::side::Side,
    b: u64,
) -> MaxTResult {
    let bu = b as usize;
    let genes = obs_stats.len();
    debug_assert_eq!(scores.len(), genes * bu);

    // 2. Permutation raw p-values per gene, via a sorted copy.
    let bf = b as f64;
    let mut pmat = vec![1.0f64; genes * bu];
    let mut sorted = vec![0.0f64; bu];
    for g in 0..genes {
        let row = &scores[g * bu..(g + 1) * bu];
        sorted.copy_from_slice(row);
        sorted.sort_by(|a, c| a.partial_cmp(c).expect("scores are never NaN"));
        for (j, &z) in row.iter().enumerate() {
            // count of scores >= z - EPSILON == bu - lower_bound(z - EPSILON)
            let t = z - EPSILON;
            let idx = sorted.partition_point(|&s| s < t);
            pmat[g * bu + j] = (bu - idx) as f64 / bf;
        }
    }

    // 3. Order genes by increasing observed raw p, ties by decreasing
    // observed score, then by index (stable).
    let obs_scores: Vec<f64> = (0..genes).map(|g| side.score(obs_stats[g])).collect();
    let obs_rawp: Vec<f64> = (0..genes).map(|g| pmat[g * bu]).collect();
    let mut order: Vec<usize> = (0..genes).collect();
    order.sort_by(|&a, &c| {
        obs_rawp[a]
            .partial_cmp(&obs_rawp[c])
            .expect("raw p-values are finite")
            .then(
                obs_scores[c]
                    .partial_cmp(&obs_scores[a])
                    .expect("scores are never NaN"),
            )
    });

    // 4. Successive minima per permutation; count exceedances.
    let mut count_adj = vec![0u64; genes];
    for j in 0..bu {
        let mut running_min = f64::INFINITY;
        for i in (0..genes).rev() {
            let g = order[i];
            let p = pmat[g * bu + j];
            if p < running_min {
                running_min = p;
            }
            if running_min <= obs_rawp[g] + EPSILON {
                count_adj[i] += 1;
            }
        }
    }

    // 5. Adjusted p-values with monotonic enforcement, mapped to gene order.
    let mut adj_ordered: Vec<f64> = count_adj.iter().map(|&c| c as f64 / bf).collect();
    for i in 1..genes {
        if adj_ordered[i] < adj_ordered[i - 1] {
            adj_ordered[i] = adj_ordered[i - 1];
        }
    }
    let mut rawp = vec![f64::NAN; genes];
    let mut adjp = vec![f64::NAN; genes];
    for (i, &g) in order.iter().enumerate() {
        if obs_scores[g] > f64::NEG_INFINITY {
            rawp[g] = obs_rawp[g];
            adjp[g] = adj_ordered[i];
        }
    }
    MaxTResult {
        teststat: obs_stats,
        rawp,
        adjp,
        order,
        b_used: b,
    }
}

/// Parallel minP: the score-matrix computation (the compute-bound stage) is
/// distributed over SPMD ranks exactly like `pmaxT` distributes its kernel —
/// contiguous permutation chunks reached by generator skip-ahead — and the
/// chunks are gathered on the master, which finishes steps 2–5 serially.
/// Results are bit-identical to [`mt_minp`].
pub fn pminp(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    budget_bytes: Option<usize>,
    n_ranks: usize,
) -> Result<MaxTResult> {
    use mpi_sim::{Universe, MASTER};

    if n_ranks == 0 {
        return Err(Error::Comm("at least one rank required".into()));
    }
    // Validate and resolve exactly as the serial path does (shares its
    // memory budget check by construction).
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    let owned_na;
    let data = match opts.na {
        Some(code) => {
            owned_na =
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?;
            &owned_na
        }
        None => data,
    };
    let b = resolve_permutation_count(&labels, opts)?;
    let genes = data.rows();
    let need = genes
        .checked_mul(b as usize)
        .and_then(|n| n.checked_mul(std::mem::size_of::<f64>()))
        .ok_or_else(|| Error::BadMatrix("minP score matrix size overflows".into()))?;
    let budget = budget_bytes.unwrap_or(DEFAULT_MINP_BUDGET_BYTES);
    if need > budget {
        return Err(Error::TooManyPermutations {
            total: Some(b as u128),
            max: (budget / (genes * std::mem::size_of::<f64>())) as u64,
        });
    }

    let input = std::sync::Arc::new((data.clone(), labels, opts.clone(), b));
    let outputs = Universe::run(n_ranks, move |comm| {
        let (data, labels, opts, b) = &*input;
        let prepared = prepare_matrix(data, opts.test, opts.nonpara);
        let scorer = build_scorer(&prepared, labels, opts.test, opts.kernel, opts.precision);
        let genes = data.rows();
        // Contiguous permutation chunk for this rank (no identity special
        // case here: minP needs every column of the score matrix anyway).
        let size = comm.size() as u64;
        let rank = comm.rank() as u64;
        let base = b / size;
        let extra = b % size;
        let take = base + u64::from(rank < extra);
        let start = rank * base + rank.min(extra);
        let mut gen = build_generator(labels, opts, *b).expect("validated generator");
        gen.skip(start);
        // Permutation-major chunk: chunk[j_local * genes + g].
        let mut chunk = vec![0.0f64; take as usize * genes];
        let mut labels_buf = vec![0u8; data.cols()];
        let mut stats = vec![f64::NAN; genes];
        let mut scratch = scorer.make_scratch();
        let mut obs_stats = vec![f64::NAN; genes];
        for j_local in 0..take as usize {
            assert!(gen.next_into(&mut labels_buf), "chunk within bounds");
            scorer.stats_into(&labels_buf, &mut scratch, &mut stats);
            for g in 0..genes {
                let stat = stats[g];
                if start == 0 && j_local == 0 {
                    obs_stats[g] = stat;
                }
                chunk[j_local * genes + g] = opts.side.score(stat);
            }
        }
        let gathered = comm
            .gather(MASTER, (start, chunk, obs_stats))
            .expect("score gather");
        gathered.map(|parts| {
            let bu = *b as usize;
            let mut scores = vec![f64::NEG_INFINITY; genes * bu];
            let mut obs = vec![f64::NAN; genes];
            for (part_start, part_chunk, part_obs) in parts {
                let part_take = part_chunk.len() / genes;
                for j_local in 0..part_take {
                    let j = part_start as usize + j_local;
                    for g in 0..genes {
                        scores[g * bu + j] = part_chunk[j_local * genes + g];
                    }
                }
                if part_start == 0 {
                    obs = part_obs;
                }
            }
            minp_from_scores(scores, obs, opts.side, *b)
        })
    })
    .map_err(|e| Error::Comm(e.to_string()))?;
    Ok(outputs
        .into_iter()
        .next()
        .flatten()
        .expect("master produces the result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxt::serial::mt_maxt;
    use crate::side::Side;

    fn two_class_data() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            3,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 4.0, 6.0, 5.5, 4.5, 5.2, 2.0, 8.0, 3.0, 7.0,
                2.5, 7.5,
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn minp_raw_p_matches_maxt_raw_p() {
        // The raw (unadjusted) p-values are defined identically.
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(0);
        let minp = mt_minp(&data, &labels, &opts, None).unwrap();
        let maxt = mt_maxt(&data, &labels, &opts).unwrap();
        for g in 0..3 {
            assert!(
                (minp.rawp[g] - maxt.rawp[g]).abs() < 1e-12,
                "gene {g}: {} vs {}",
                minp.rawp[g],
                maxt.rawp[g]
            );
        }
        assert_eq!(minp.teststat, maxt.teststat);
    }

    #[test]
    fn minp_adjusted_at_least_raw_and_monotone() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(60);
        let r = mt_minp(&data, &labels, &opts, None).unwrap();
        for g in 0..3 {
            assert!(r.adjp[g] >= r.rawp[g] - 1e-12);
            assert!(r.adjp[g] <= 1.0 + 1e-12);
        }
        let rows: Vec<_> = r.by_significance().collect();
        for w in rows.windows(2) {
            assert!(w[1].adjp >= w[0].adjp - 1e-12);
        }
    }

    #[test]
    fn single_gene_minp_equals_rawp() {
        let data = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0]).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let opts = PmaxtOptions::default().permutations(0);
        let r = mt_minp(&data, &labels, &opts, None).unwrap();
        assert!((r.adjp[0] - r.rawp[0]).abs() < 1e-12);
        assert!((r.rawp[0] - 0.1).abs() < 1e-12); // 2/20 two-sided
    }

    #[test]
    fn minp_orders_by_raw_p() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(0);
        let r = mt_minp(&data, &labels, &opts, None).unwrap();
        let ps: Vec<f64> = r.order.iter().map(|&g| r.rawp[g]).collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "order not by raw p: {ps:?}");
        }
        // Gene 0 (strongly differential) first.
        assert_eq!(r.order[0], 0);
    }

    #[test]
    fn memory_budget_is_enforced() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(10_000);
        let err = mt_minp(&data, &labels, &opts, Some(1024)).unwrap_err();
        assert!(matches!(err, Error::TooManyPermutations { .. }));
    }

    #[test]
    fn nan_gene_gets_nan_p_values() {
        let data = Matrix::from_vec(
            2,
            6,
            vec![1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 7.0, 7.0, 7.0, 7.0, 7.0, 7.0],
        )
        .unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let opts = PmaxtOptions::default().permutations(0);
        let r = mt_minp(&data, &labels, &opts, None).unwrap();
        assert!(r.rawp[1].is_nan());
        assert!(r.adjp[1].is_nan());
        assert!(r.rawp[0].is_finite());
    }

    #[test]
    fn minp_and_maxt_agree_for_exchangeable_genes() {
        // When all genes share the same marginal null (same design, similar
        // scale), minP and maxT adjusted p-values should be close — for a
        // single gene they are identical (both equal the raw p).
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(200);
        let minp = mt_minp(&data, &labels, &opts, None).unwrap();
        let maxt = mt_maxt(&data, &labels, &opts).unwrap();
        for g in 0..3 {
            assert!(
                (minp.adjp[g] - maxt.adjp[g]).abs() < 0.25,
                "gene {g}: minP {} vs maxT {}",
                minp.adjp[g],
                maxt.adjp[g]
            );
        }
    }

    #[test]
    fn all_sides_and_methods_run() {
        use crate::options::TestMethod;
        let (data, two) = two_class_data();
        for (method, labels) in [
            (TestMethod::T, two.clone()),
            (TestMethod::Wilcoxon, two.clone()),
            (TestMethod::F, vec![0, 0, 1, 1, 2, 2]),
            (TestMethod::PairT, vec![0, 1, 0, 1, 0, 1]),
            (TestMethod::BlockF, vec![0, 1, 0, 1, 0, 1]),
        ] {
            for side in [Side::Abs, Side::Upper, Side::Lower] {
                let opts = PmaxtOptions {
                    test: method,
                    side,
                    b: 40,
                    ..PmaxtOptions::default()
                };
                let r = mt_minp(&data, &labels, &opts, None)
                    .unwrap_or_else(|e| panic!("{method:?}/{side:?}: {e}"));
                assert_eq!(r.b_used, 40);
            }
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    fn two_class_data() -> (Matrix, Vec<u8>) {
        let data = Matrix::from_vec(
            4,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, 5.0, 4.0, 6.0, 5.5, 4.5, 5.2, 2.0, 8.0, 3.0, 7.0,
                2.5, 7.5, 1.0, 1.2, 0.8, 1.1, 0.9, 1.3,
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn pminp_equals_serial_for_many_rank_counts() {
        let (data, labels) = two_class_data();
        for opts in [
            PmaxtOptions::default().permutations(37),
            PmaxtOptions::default().permutations(0), // complete: 20
            PmaxtOptions::default()
                .permutations(37)
                .fixed_seed_sampling("n")
                .unwrap(),
        ] {
            let serial = mt_minp(&data, &labels, &opts, None).unwrap();
            for ranks in [1usize, 2, 3, 5, 8] {
                let par = pminp(&data, &labels, &opts, None, ranks).unwrap();
                assert_eq!(par, serial, "b={} ranks={ranks}", opts.b);
            }
        }
    }

    #[test]
    fn pminp_respects_budget_and_rank_validation() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(10_000);
        assert!(matches!(
            pminp(&data, &labels, &opts, Some(64), 2),
            Err(Error::TooManyPermutations { .. })
        ));
        assert!(pminp(&data, &labels, &opts, None, 0).is_err());
    }

    #[test]
    fn pminp_more_ranks_than_permutations() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(3);
        let serial = mt_minp(&data, &labels, &opts, None).unwrap();
        let par = pminp(&data, &labels, &opts, None, 7).unwrap();
        assert_eq!(par, serial);
    }
}
