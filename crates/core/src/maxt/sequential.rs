//! Adaptive (sequential) Monte-Carlo permutation testing — extension beyond
//! the paper.
//!
//! The paper's motivation: "these users wish to execute more permutations to
//! better validate their experimental results, but the time cost of doing
//! sufficient permutations is prohibitive". Sequential stopping in the style
//! of Besag & Clifford (1991) attacks the same cost from the other side: for
//! genes that are clearly *not* significant, a small number of permutations
//! already yields many exceedances, and sampling for them can stop early; the
//! full permutation budget is only spent where it matters.
//!
//! This implementation shares one permutation stream across all genes (the
//! generators are the same skip-ahead machinery as `mt_maxt`) and tracks
//! per-gene exceedance counts; a gene *resolves* once its count reaches `h`.
//! The run stops when every gene is resolved or after `b_max` permutations.
//! Per-gene raw p-value estimates are `count / n_done` — for resolved genes a
//! conservative estimate with relative standard error ≈ `1/sqrt(h)`.

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::options::PmaxtOptions;
use crate::perm::build_generator;

use crate::stats::prepare_matrix;
use crate::stats::scorer::build_scorer;

/// Result of an adaptive raw-p run.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialRawP {
    /// Per-gene raw p-value estimates (NaN for non-computable genes).
    pub rawp: Vec<f64>,
    /// Per-gene exceedance counts (identity included).
    pub exceedances: Vec<u64>,
    /// Permutations actually consumed (identity included).
    pub b_done: u64,
    /// True when the run stopped before `b_max` because every gene resolved.
    pub stopped_early: bool,
}

/// Run the sequential procedure: stop once every gene has `h` exceedances or
/// after `b_max` permutations (identity included in both).
///
/// `opts.b` is ignored in favour of `b_max`; all other options (test, side,
/// sampling mode, seed, NA code, nonpara) behave exactly as in `mt_maxt`.
///
/// ```
/// use sprint_core::matrix::Matrix;
/// use sprint_core::options::PmaxtOptions;
/// use sprint_core::maxt::sequential::sequential_rawp;
///
/// // A null gene resolves quickly: 5 exceedances arrive long before 100 000
/// // permutations.
/// let data = Matrix::from_vec(1, 6, vec![2.0, 1.0, 3.0, 2.5, 1.5, 2.8]).unwrap();
/// let r = sequential_rawp(&data, &[0, 0, 0, 1, 1, 1], &PmaxtOptions::default(), 5, 100_000)
///     .unwrap();
/// assert!(r.stopped_early);
/// assert!(r.exceedances[0] >= 5);
/// ```
pub fn sequential_rawp(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    h: u64,
    b_max: u64,
) -> Result<SequentialRawP> {
    if h == 0 || b_max == 0 {
        return Err(Error::BadOption {
            param: "h/b_max",
            value: format!("h={h}, b_max={b_max} (both must be positive)"),
        });
    }
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    let owned_na;
    let data = match opts.na {
        Some(code) => {
            owned_na =
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?;
            &owned_na
        }
        None => data,
    };
    let run_opts = PmaxtOptions {
        b: b_max,
        ..opts.clone()
    };
    let prepared = prepare_matrix(data, opts.test, opts.nonpara);
    let scorer = build_scorer(&prepared, &labels, opts.test, opts.kernel, opts.precision);
    let mut scratch = scorer.make_scratch();
    let genes = data.rows();

    // Observed scores (identity labelling).
    let mut stats = vec![0.0f64; genes];
    scorer.stats_into(labels.as_slice(), &mut scratch, &mut stats);
    let obs_scores: Vec<f64> = stats.iter().map(|&s| opts.side.score(s)).collect();
    // Non-computable genes can never resolve; exclude them from the stopping
    // condition up front.
    let computable = obs_scores
        .iter()
        .filter(|&&s| s > f64::NEG_INFINITY)
        .count();

    let mut gen = build_generator(&labels, &run_opts, b_max)?;
    let mut labels_buf = vec![0u8; data.cols()];
    let mut counts = vec![0u64; genes];
    let mut unresolved = computable;
    let mut b_done = 0u64;
    while gen.next_into(&mut labels_buf) {
        b_done += 1;
        scorer.stats_into(&labels_buf, &mut scratch, &mut stats);
        for g in 0..genes {
            if obs_scores[g] == f64::NEG_INFINITY {
                continue;
            }
            let z = opts.side.score(stats[g]);
            if z >= obs_scores[g] - crate::maxt::EPSILON {
                counts[g] += 1;
                if counts[g] == h {
                    unresolved -= 1;
                }
            }
        }
        if unresolved == 0 {
            break;
        }
    }

    let rawp = (0..genes)
        .map(|g| {
            if obs_scores[g] == f64::NEG_INFINITY {
                f64::NAN
            } else {
                counts[g] as f64 / b_done as f64
            }
        })
        .collect();
    Ok(SequentialRawP {
        rawp,
        exceedances: counts,
        b_done,
        stopped_early: b_done < b_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxt::serial::mt_maxt;

    fn null_data(genes: usize, seed_shift: f64) -> (Matrix, Vec<u8>) {
        // Deterministic pseudo-noise rows with no class signal.
        let cols = 10;
        let mut v = Vec::with_capacity(genes * cols);
        for g in 0..genes {
            for c in 0..cols {
                let x = ((g * 31 + c * 17) as f64 + seed_shift).sin() * 3.0;
                v.push(x);
            }
        }
        (
            Matrix::from_vec(genes, cols, v).unwrap(),
            vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1],
        )
    }

    fn signal_data() -> (Matrix, Vec<u8>) {
        let (m, labels) = null_data(10, 0.0);
        let mut v = m.as_slice().to_vec();
        // Plant a strong effect in gene 0.
        for cell in v.iter_mut().take(10).skip(5) {
            *cell += 25.0;
        }
        (Matrix::from_vec(10, 10, v).unwrap(), labels)
    }

    #[test]
    fn null_genes_resolve_early() {
        let (data, labels) = null_data(20, 1.0);
        let opts = PmaxtOptions::default();
        let r = sequential_rawp(&data, &labels, &opts, 10, 100_000).unwrap();
        assert!(r.stopped_early, "null data should stop early");
        assert!(
            r.b_done < 5_000,
            "needed {} permutations for pure-null data",
            r.b_done
        );
        for g in 0..20 {
            assert!(r.exceedances[g] >= 10);
            assert!(r.rawp[g] > 0.0 && r.rawp[g] <= 1.0);
        }
    }

    #[test]
    fn strong_signal_prevents_early_stop() {
        let (data, labels) = signal_data();
        let opts = PmaxtOptions::default();
        let b_max = 300;
        let r = sequential_rawp(&data, &labels, &opts, 20, b_max).unwrap();
        // Gene 0's observed statistic is the most extreme possible: only the
        // identity and mirror-symmetric relabellings reach it, so it cannot
        // accumulate 20 exceedances and the run exhausts b_max.
        assert!(!r.stopped_early);
        assert_eq!(r.b_done, b_max);
        assert!(r.rawp[0] <= 0.05, "planted gene p = {}", r.rawp[0]);
    }

    #[test]
    fn estimates_agree_with_fixed_b_run() {
        // With h unreachable the sequential run degenerates to a fixed-B run
        // and must match mt_maxt's raw p-values exactly (same generator,
        // same seed, same count definition).
        let (data, labels) = signal_data();
        let opts = PmaxtOptions::default().permutations(400);
        let fixed = mt_maxt(&data, &labels, &opts).unwrap();
        let seq = sequential_rawp(&data, &labels, &opts, u64::MAX, 400).unwrap();
        assert_eq!(seq.b_done, 400);
        for g in 0..10 {
            let (a, b) = (seq.rawp[g], fixed.rawp[g]);
            assert!(
                (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-12,
                "gene {g}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn resolved_estimates_close_to_long_run() {
        let (data, labels) = null_data(15, 2.0);
        let opts = PmaxtOptions::default();
        let seq = sequential_rawp(&data, &labels, &opts, 30, 50_000).unwrap();
        let long = mt_maxt(&data, &labels, &opts.clone().permutations(20_000)).unwrap();
        for g in 0..15 {
            let (a, b) = (seq.rawp[g], long.rawp[g]);
            // Relative error ~ 1/sqrt(h) ≈ 0.18; allow generous slack.
            assert!(
                (a - b).abs() / b < 0.6,
                "gene {g}: sequential {a} vs long-run {b}"
            );
        }
    }

    #[test]
    fn identity_always_counts_once() {
        let (data, labels) = signal_data();
        let opts = PmaxtOptions::default();
        let r = sequential_rawp(&data, &labels, &opts, 5, 50).unwrap();
        for g in 0..10 {
            if !r.rawp[g].is_nan() {
                assert!(r.exceedances[g] >= 1, "gene {g} lost the identity count");
            }
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (data, labels) = signal_data();
        let opts = PmaxtOptions::default();
        assert!(sequential_rawp(&data, &labels, &opts, 0, 100).is_err());
        assert!(sequential_rawp(&data, &labels, &opts, 5, 0).is_err());
    }

    #[test]
    fn nan_gene_does_not_block_stopping() {
        let (data, labels) = null_data(5, 3.0);
        let mut v = data.as_slice().to_vec();
        for c in 0..10 {
            v[2 * 10 + c] = 4.2; // constant row → NaN statistic
        }
        let data = Matrix::from_vec(5, 10, v).unwrap();
        let opts = PmaxtOptions::default();
        let r = sequential_rawp(&data, &labels, &opts, 8, 100_000).unwrap();
        assert!(
            r.stopped_early,
            "NaN gene must not block the stop condition"
        );
        assert!(r.rawp[2].is_nan());
    }
}
