//! `mt_maxt` — the serial reference implementation, equivalent to the R/C
//! `mt.maxT` function that `pmaxT` parallelizes. The parallel driver is
//! tested for bit-identical agreement with this function.

use crate::error::{Error, Result};
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::engine::{self, EngineConfig};
use crate::maxt::{MaxTContext, MaxTResult};
use crate::options::PmaxtOptions;
use crate::perm::resolve_permutation_count;
use crate::stats::prepare_matrix;

/// Run the full serial permutation test.
///
/// ```
/// use sprint_core::matrix::Matrix;
/// use sprint_core::options::PmaxtOptions;
/// use sprint_core::maxt::serial::mt_maxt;
///
/// // Two genes, four samples, two classes.
/// let data = Matrix::from_vec(2, 4, vec![
///     1.0, 2.0, 8.0, 9.0, // strongly differential
///     5.0, 1.0, 4.0, 2.0, // noise
/// ]).unwrap();
/// let result = mt_maxt(&data, &[0, 0, 1, 1], &PmaxtOptions::default().permutations(0)).unwrap();
/// assert_eq!(result.b_used, 6); // complete enumeration of C(4,2)
/// assert!(result.rawp[0] < result.rawp[1]);
/// ```
pub fn mt_maxt(data: &Matrix, classlabel: &[u8], opts: &PmaxtOptions) -> Result<MaxTResult> {
    // Dispatch through the batched multi-threaded engine with the geometry
    // resolved from the options and environment. Any geometry produces
    // bit-identical results (see `crate::maxt::engine`), so this stays the
    // serial *reference* in the semantic sense while using the hardware.
    let (labels, b, prepared) = prepare_run(data, classlabel, opts)?;
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &labels,
        opts.test,
        opts.side,
        opts.kernel,
        opts.precision,
    );
    let run = engine::accumulate_chunk(&ctx, &labels, opts, b, 0, b, EngineConfig::resolve(opts))?;
    debug_assert_eq!(run.counts.n_perm, b);
    Ok(ctx.finalize(&run.counts))
}

/// The shared front half of every maxT driver: validate the labels against
/// the matrix, canonicalize the NA code, resolve the permutation count and
/// prepare (rank-transform) the data. Returns an owned prepared matrix so
/// alternative backends (e.g. the bench crate's rayon driver) can run the
/// same pipeline without re-implementing any of it.
pub fn prepare_run(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
) -> Result<(ClassLabels, u64, Matrix)> {
    // The maxT pipeline interprets draws as label vectors; bootstrap draws
    // are index vectors and run through `crate::boot` instead. Refusing here
    // covers every consumer that funnels through this front half: the serial
    // path, the threaded engine, the adaptive runner, and jobd spans/ranks.
    if opts.workload == crate::options::Workload::Bootstrap {
        return Err(Error::BadOption {
            param: "workload",
            value: "bootstrap (maxT permutation entry points only run the pmaxt \
                    workload; submit bootstrap runs through the bootstrap driver)"
                .into(),
        });
    }
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test)?;
    if labels.len() != data.cols() {
        return Err(Error::BadLabels(format!(
            "classlabel length {} does not match {} data columns",
            labels.len(),
            data.cols()
        )));
    }
    // Canonicalize the NA code if one was supplied.
    let owned_na;
    let data = match opts.na {
        Some(code) => {
            owned_na =
                Matrix::from_vec_with_na(data.rows(), data.cols(), data.as_slice().to_vec(), code)?;
            &owned_na
        }
        None => data,
    };
    let b = resolve_permutation_count(&labels, opts)?;
    let prepared = prepare_matrix(data, opts.test, opts.nonpara).into_owned();
    Ok((labels, b, prepared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TestMethod;
    use crate::side::Side;

    fn two_class_data() -> (Matrix, Vec<u8>) {
        // 3 genes x 6 samples; gene 0 strongly differential.
        let data = Matrix::from_vec(
            3,
            6,
            vec![
                1.0, 2.0, 1.5, 9.0, 10.0, 9.5, // differential
                5.0, 4.0, 6.0, 5.5, 4.5, 5.2, // flat
                2.0, 8.0, 3.0, 7.0, 2.5, 7.5, // noisy
            ],
        )
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn differential_gene_is_most_significant() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().permutations(0); // complete: C(6,3)=20
        let r = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(r.b_used, 20);
        assert_eq!(r.order[0], 0, "gene 0 should rank first");
        // Two-sided complete test: min possible p = 2/20.
        assert!((r.rawp[0] - 0.1).abs() < 1e-12);
        assert!(r.rawp[1] > r.rawp[0]);
    }

    #[test]
    fn all_methods_run_end_to_end() {
        let (data, two) = two_class_data();
        for (method, labels) in [
            (TestMethod::T, two.clone()),
            (TestMethod::TEqualVar, two.clone()),
            (TestMethod::Wilcoxon, two.clone()),
            (TestMethod::F, vec![0, 0, 1, 1, 2, 2]),
            (TestMethod::PairT, vec![0, 1, 0, 1, 0, 1]),
            (TestMethod::BlockF, vec![0, 1, 0, 1, 0, 1]),
        ] {
            let opts = PmaxtOptions::default().test(method).permutations(50);
            let r =
                mt_maxt(&data, &labels, &opts).unwrap_or_else(|e| panic!("{method:?} failed: {e}"));
            assert_eq!(r.b_used, 50);
            for g in 0..3 {
                let p = r.rawp[g];
                assert!(
                    p.is_nan() || (0.0 < p && p <= 1.0),
                    "{method:?} gene {g} p={p}"
                );
            }
        }
    }

    #[test]
    fn sides_differ_appropriately() {
        let (data, labels) = two_class_data();
        // Gene 0: group 1 larger, so statistic (m1-m0) is positive — upper
        // side should be more significant than lower.
        let upper = mt_maxt(
            &data,
            &labels,
            &PmaxtOptions::default().side(Side::Upper).permutations(0),
        )
        .unwrap();
        let lower = mt_maxt(
            &data,
            &labels,
            &PmaxtOptions::default().side(Side::Lower).permutations(0),
        )
        .unwrap();
        assert!(upper.rawp[0] < lower.rawp[0]);
    }

    #[test]
    fn na_code_is_applied() {
        let data = Matrix::from_vec(1, 6, vec![1.0, 2.0, -999.0, 9.0, 10.0, 9.5]).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let with_code = mt_maxt(
            &data,
            &labels,
            &PmaxtOptions::default().na_code(-999.0).permutations(0),
        )
        .unwrap();
        let data_nan = Matrix::from_vec(1, 6, vec![1.0, 2.0, f64::NAN, 9.0, 10.0, 9.5]).unwrap();
        let with_nan =
            mt_maxt(&data_nan, &labels, &PmaxtOptions::default().permutations(0)).unwrap();
        assert_eq!(with_code.rawp, with_nan.rawp);
        assert_eq!(with_code.teststat, with_nan.teststat);
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let (data, _) = two_class_data();
        let err = mt_maxt(&data, &[0, 1], &PmaxtOptions::default()).unwrap_err();
        assert!(matches!(err, Error::BadLabels(_)));
    }

    #[test]
    fn nonpara_equals_manual_rank_transform() {
        let (data, labels) = two_class_data();
        let opts = PmaxtOptions::default().nonpara(true).permutations(40);
        let nonpara = mt_maxt(&data, &labels, &opts).unwrap();
        // Manually rank-transform and run parametric.
        let mut ranked = data.clone();
        let mut scratch = Vec::new();
        ranked.map_rows_in_place(|row| crate::stats::ranks::midranks_in_place(row, &mut scratch));
        let manual = mt_maxt(&ranked, &labels, &PmaxtOptions::default().permutations(40)).unwrap();
        assert_eq!(nonpara.rawp, manual.rawp);
        assert_eq!(nonpara.adjp, manual.adjp);
    }

    #[test]
    fn stored_and_fixed_seed_sample_different_but_valid() {
        let (data, labels) = two_class_data();
        let fixed = mt_maxt(&data, &labels, &PmaxtOptions::default().permutations(100)).unwrap();
        let stored = mt_maxt(
            &data,
            &labels,
            &PmaxtOptions::default()
                .permutations(100)
                .fixed_seed_sampling("n")
                .unwrap(),
        )
        .unwrap();
        // Different Monte-Carlo streams, but both valid probabilities and the
        // same observed statistics.
        assert_eq!(fixed.teststat, stored.teststat);
        for g in 0..3 {
            assert!(stored.rawp[g] > 0.0 && stored.rawp[g] <= 1.0);
        }
    }

    #[test]
    fn wilcoxon_complete_is_exact() {
        // Perfectly separated gene: under |z| the observed split is one of
        // the 2 most extreme of 20 → rawp = 2/20.
        let data = Matrix::from_vec(1, 6, vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0]).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let r = mt_maxt(
            &data,
            &labels,
            &PmaxtOptions::default()
                .test(TestMethod::Wilcoxon)
                .permutations(0),
        )
        .unwrap();
        assert_eq!(r.b_used, 20);
        assert!((r.rawp[0] - 0.1).abs() < 1e-12);
    }
}
