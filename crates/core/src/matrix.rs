//! Row-major data matrix with missing-value handling.
//!
//! In the R interface (`pmaxT(X, classlabel, …, na = .mt.naNUM, …)`), `X` is a
//! genes × samples matrix and `na` is a sentinel code marking missing cells.
//! We canonicalize missing cells to `f64::NAN` once at construction — the
//! paper's "create data" step — so every downstream statistic only has to test
//! `is_nan()`.

use crate::error::{Error, Result};

/// A dense, row-major genes × samples matrix. Missing values are `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Build from row-major data. `data.len()` must equal `rows * cols` and
    /// both dimensions must be nonzero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::BadMatrix(format!(
                "dimensions must be nonzero, got {rows}x{cols}"
            )));
        }
        if data.len() != rows * cols {
            return Err(Error::BadMatrix(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from row-major data, converting every cell equal to the `na`
    /// code into `NaN`. This mirrors the `na = .mt.naNUM` parameter.
    pub fn from_vec_with_na(rows: usize, cols: usize, mut data: Vec<f64>, na: f64) -> Result<Self> {
        for v in &mut data {
            // Bit-exact match on the code, as the C implementation does; NaN
            // cells are already missing.
            if *v == na {
                *v = f64::NAN;
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows (genes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (samples).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Cell access (row, col).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// The full row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the backing vector (row-major).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Count of missing (`NaN`) cells.
    pub fn na_count(&self) -> usize {
        self.data.iter().filter(|v| v.is_nan()).count()
    }

    /// Apply `f` to every row in place. Used for the non-parametric rank
    /// transform.
    pub fn map_rows_in_place(&mut self, mut f: impl FnMut(&mut [f64])) {
        for r in 0..self.rows {
            f(self.row_mut(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert!(matches!(
            Matrix::from_vec(2, 3, vec![1.0; 5]),
            Err(Error::BadMatrix(_))
        ));
        assert!(matches!(
            Matrix::from_vec(0, 3, vec![]),
            Err(Error::BadMatrix(_))
        ));
        assert!(matches!(
            Matrix::from_vec(3, 0, vec![]),
            Err(Error::BadMatrix(_))
        ));
    }

    #[test]
    fn na_code_is_canonicalized() {
        let na = -9999.0;
        let m = Matrix::from_vec_with_na(1, 4, vec![1.0, na, 3.0, f64::NAN], na).unwrap();
        assert!(m.get(0, 1).is_nan());
        assert!(m.get(0, 3).is_nan());
        assert_eq!(m.na_count(), 2);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn na_code_matching_is_exact() {
        // A value close to but not equal to the code must survive.
        let m = Matrix::from_vec_with_na(1, 2, vec![-9999.0000001, -9999.0], -9999.0).unwrap();
        assert!(!m.get(0, 0).is_nan());
        assert!(m.get(0, 1).is_nan());
    }

    #[test]
    fn map_rows_in_place_transforms_each_row() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        m.map_rows_in_place(|row| {
            for v in row {
                *v *= 10.0;
            }
        });
        assert_eq!(m.as_slice(), &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn row_mut_modifies_backing_storage() {
        let mut m = Matrix::from_vec(2, 2, vec![0.0; 4]).unwrap();
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
        assert_eq!(m.into_vec(), vec![0.0, 0.0, 7.0, 0.0]);
    }
}
