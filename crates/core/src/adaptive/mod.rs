//! Adaptive permutation budgets: sequential early stopping with
//! anytime-valid bounds, plus a generalized-Pareto tail approximation for
//! the smallest p-values.
//!
//! Exact mode spends `G × B` gene-permutations regardless of what the data
//! says. But most genes in a typical experiment are null — a few hundred
//! permutations certify them non-significant — while only the extreme tail
//! benefits from (or needs more than) the full budget. This subsystem makes
//! that trade explicit and *safe*:
//!
//! - [`confseq`] — the decision layer. A Robbins confidence sequence gives
//!   anytime-valid per-gene bounds (peeking after every chunk never inflates
//!   the error rate), and a deterministic envelope `[k/B, (k + B − c)/B]`
//!   bounds each early-stopped gene's exact p-value *with certainty*.
//! - [`runner`] — [`AdaptiveRunner`] wraps the exact engine's
//!   `accumulate_chunk` loop: full-gene chunks until the first deactivation
//!   (the **exact-prefix watermark**, a bitwise-valid exact checkpoint that
//!   jobd caches so adaptive runs can later be upgraded to exact), then
//!   masked chunks over the shrinking live gene set.
//! - [`tail`] — a moment-matched GPD fit over the score tail of the most
//!   significant genes, with fit diagnostics (threshold, shape/scale,
//!   Anderson–Darling-style goodness flag), pushing p-value resolution
//!   below the `1/B` floor of the empirical estimate.
//!
//! Adaptive results are *not* exact results: `options_digest` carries a
//! `mode=adaptive` marker (exactly as `precision=f32` marks reduced
//! precision) and every surface that contracts bitwise reproducibility —
//! checkpoint resume, jobd span execution — refuses the mode. The
//! permutation *stream*, however, is identical, so `stream_digest` does not
//! move: an adaptive job and an exact job share one cache address, and
//! upgrading adaptive → exact is a plain extension of the cached prefix.

pub mod confseq;
pub mod runner;
pub mod tail;

pub use confseq::{cs_lower_bound, cs_upper_bound, envelope};
pub use runner::AdaptiveRunner;
pub use tail::TailFit;

use crate::error::Result;
use crate::matrix::Matrix;
use crate::maxt::engine::{ChunkHooks, EngineConfig};
use crate::maxt::serial::prepare_run;
use crate::maxt::{CountAccumulator, MaxTContext, MaxTResult};
use crate::options::PmaxtOptions;

/// Tuning knobs of the adaptive runner. The defaults are conservative: stop
/// a gene only when it is certifiably non-significant at any practical
/// level, and never before a minimum evidence floor.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Error rate of the anytime-valid confidence sequence driving the stop
    /// decisions (the chance that *any* stopped gene's CS failed to cover
    /// its true p-value at the moment it stopped).
    pub alpha: f64,
    /// Deactivate a gene once the CS lower bound on its raw p-value exceeds
    /// this. Raw p above it implies adjusted p above it (step-down only
    /// increases p-values), so 0.1 certifies non-significance at every
    /// conventional level.
    pub threshold: f64,
    /// Permutations between deactivation sweeps; `0` selects
    /// `max(128, B/64)`.
    pub check_every: u64,
    /// Evidence floor: no gene stops before this many scored permutations.
    pub min_perms: u64,
    /// How many of the most significant genes get a GPD tail fit.
    pub tail_top: usize,
    /// Permutations scored by the tail pass (capped at `B`).
    pub tail_m: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            alpha: 0.05,
            threshold: 0.1,
            check_every: 0,
            min_perms: 64,
            tail_top: 16,
            tail_m: 2_000,
        }
    }
}

/// Per-gene and whole-run diagnostics of an adaptive run — the fields the
/// service surfaces in `status`/`result` and the bench table aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Resolved total permutation count of the run.
    pub b: u64,
    /// Per-gene scored-prefix length (`b` for genes that ran to completion).
    pub scored: Vec<u64>,
    /// Per-gene raw exceedance count over the scored prefix.
    pub counts: Vec<u64>,
    /// Per-gene deactivation cursor; `None` = never deactivated.
    pub stopped_at: Vec<Option<u64>>,
    /// Deterministic lower bound on the exact-mode raw p-value (`NaN` for
    /// non-computable genes).
    pub p_lower: Vec<f64>,
    /// Deterministic upper bound (collapses onto `p_lower` for genes that
    /// ran to completion).
    pub p_upper: Vec<f64>,
    /// Point estimate `count / scored` — the minimum-variance estimate from
    /// the permutations actually paid for.
    pub p_point: Vec<f64>,
    /// GPD tail fit per gene (`Some` only for tail-fitted genes).
    pub tail: Vec<Option<TailFit>>,
    /// Gene-permutations actually scored (main run + tail pass).
    pub gene_perms_scored: u64,
    /// Gene-permutations an exact run would score (`genes × B`).
    pub gene_perms_exact: u64,
    /// Cursor of the exact-prefix watermark: full-gene counts up to here
    /// form a bitwise-valid exact checkpoint.
    pub watermark: u64,
    /// Whether the mass-deactivation note fired (>90% of eligible genes
    /// stopped before 10% of `B`).
    pub mass_deactivation: bool,
}

impl AdaptiveReport {
    /// Fraction of exact mode's gene-permutations this run scored.
    pub fn budget_fraction(&self) -> f64 {
        self.gene_perms_scored as f64 / self.gene_perms_exact as f64
    }

    /// Number of genes deactivated before the run's end.
    pub fn genes_stopped(&self) -> usize {
        self.stopped_at.iter().filter(|s| s.is_some()).count()
    }
}

/// Everything an adaptive run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Full-gene maxT result finalized from the exact-prefix watermark — a
    /// valid (smaller-`B`) Monte-Carlo estimate of raw *and* step-down
    /// adjusted p-values; `b_used` is the watermark cursor. Sharper per-gene
    /// raw estimates and bounds live in [`AdaptiveOutcome::report`].
    pub result: MaxTResult,
    /// Per-gene diagnostics.
    pub report: AdaptiveReport,
    /// The exact-prefix accumulator (`n_perm` = `report.watermark`) — what a
    /// checkpoint of an exact run at that cursor would contain. jobd stores
    /// it under the shared cache address to seed upgrades to exact.
    pub watermark: CountAccumulator,
}

/// Run a full adaptive permutation test — the adaptive sibling of
/// [`mt_maxt`](crate::maxt::serial::mt_maxt).
///
/// ```
/// use sprint_core::adaptive::{adaptive_maxt, AdaptiveConfig};
/// use sprint_core::matrix::Matrix;
/// use sprint_core::options::PmaxtOptions;
///
/// // 30 null genes: almost all deactivate long before B.
/// let cols = 10;
/// let data: Vec<f64> = (0..30 * cols)
///     .map(|i| ((i * 37 % 101) as f64).sin())
///     .collect();
/// let data = Matrix::from_vec(30, cols, data).unwrap();
/// let labels = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
/// let opts = PmaxtOptions::default().permutations(4000);
/// let out = adaptive_maxt(&data, &labels, &opts, &AdaptiveConfig::default()).unwrap();
/// assert!(out.report.budget_fraction() < 1.0);
/// ```
pub fn adaptive_maxt(
    data: &Matrix,
    classlabel: &[u8],
    opts: &PmaxtOptions,
    config: &AdaptiveConfig,
) -> Result<AdaptiveOutcome> {
    let (labels, b, prepared) = prepare_run(data, classlabel, opts)?;
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &labels,
        opts.test,
        opts.side,
        opts.kernel,
        opts.precision,
    );
    let runner = AdaptiveRunner::new(
        &ctx,
        &prepared,
        &labels,
        opts,
        b,
        EngineConfig::resolve(opts),
        config.clone(),
    );
    runner.run(ChunkHooks::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxt::engine;
    use crate::maxt::serial::mt_maxt;
    use crate::options::TestMethod;

    fn null_data(genes: usize, cols: usize, shift: f64) -> (Matrix, Vec<u8>) {
        let mut v = Vec::with_capacity(genes * cols);
        for g in 0..genes {
            for c in 0..cols {
                v.push(((g * 31 + c * 17) as f64 + shift).sin() * 3.0);
            }
        }
        let labels = (0..cols).map(|c| (c >= cols / 2) as u8).collect();
        (Matrix::from_vec(genes, cols, v).unwrap(), labels)
    }

    fn mixed_data() -> (Matrix, Vec<u8>) {
        // 12 genes, 10 samples; genes 0 and 1 carry strong signal.
        let (m, labels) = null_data(12, 10, 0.5);
        let mut v = m.into_vec();
        for c in 5..10 {
            v[c] += 30.0; // gene 0
            v[10 + c] += 18.0; // gene 1
        }
        (Matrix::from_vec(12, 10, v).unwrap(), labels)
    }

    #[test]
    fn envelope_contains_the_exact_p_value() {
        let (data, labels) = mixed_data();
        let opts = PmaxtOptions::default().permutations(2000);
        let exact = mt_maxt(&data, &labels, &opts).unwrap();
        let cfg = AdaptiveConfig {
            check_every: 100,
            min_perms: 50,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_maxt(&data, &labels, &opts, &cfg).unwrap();
        assert!(out.report.genes_stopped() > 0, "null genes should stop");
        for g in 0..12 {
            if exact.rawp[g].is_nan() {
                assert!(out.report.p_lower[g].is_nan());
                continue;
            }
            assert!(
                out.report.p_lower[g] <= exact.rawp[g] + 1e-12
                    && exact.rawp[g] <= out.report.p_upper[g] + 1e-12,
                "gene {g}: exact {} outside [{}, {}]",
                exact.rawp[g],
                out.report.p_lower[g],
                out.report.p_upper[g]
            );
        }
        // Genes that ran to completion have collapsed bounds equal to exact.
        for g in 0..12 {
            if out.report.stopped_at[g].is_none() && !exact.rawp[g].is_nan() {
                assert_eq!(out.report.scored[g], 2000);
                assert!((out.report.p_lower[g] - exact.rawp[g]).abs() < 1e-12);
                assert!((out.report.p_upper[g] - exact.rawp[g]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unreachable_threshold_degenerates_to_exact() {
        let (data, labels) = mixed_data();
        let opts = PmaxtOptions::default().permutations(400);
        let cfg = AdaptiveConfig {
            threshold: 2.0, // CS lower bound never exceeds 1
            ..AdaptiveConfig::default()
        };
        let out = adaptive_maxt(&data, &labels, &opts, &cfg).unwrap();
        let exact = mt_maxt(&data, &labels, &opts).unwrap();
        assert_eq!(out.result, exact, "no deactivation ⇒ bitwise-exact result");
        assert_eq!(out.report.watermark, 400);
        assert!(out.report.stopped_at.iter().all(|s| s.is_none()));
    }

    #[test]
    fn null_data_saves_most_of_the_budget() {
        let (data, labels) = null_data(24, 10, 2.0);
        let opts = PmaxtOptions::default().permutations(8000);
        let out = adaptive_maxt(&data, &labels, &opts, &AdaptiveConfig::default()).unwrap();
        assert!(
            out.report.budget_fraction() < 0.25,
            "null data scored {:.1}% of the exact budget",
            100.0 * out.report.budget_fraction()
        );
        assert!(out.report.genes_stopped() >= 20);
        // The satellite diagnostic: nearly everything stopped early.
        assert!(out.report.mass_deactivation);
    }

    #[test]
    fn watermark_is_a_bitwise_exact_prefix() {
        let (data, labels) = mixed_data();
        let opts = PmaxtOptions::default().permutations(1500);
        let cfg = AdaptiveConfig {
            check_every: 128,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_maxt(&data, &labels, &opts, &cfg).unwrap();
        let wm = out.report.watermark;
        assert!(wm > 0 && wm <= 1500);
        // Recompute the same prefix through the exact engine: byte-identical.
        let (lab, b, prepared) = prepare_run(&data, &labels, &opts).unwrap();
        let ctx = MaxTContext::with_scorer(
            &prepared,
            &lab,
            opts.test,
            opts.side,
            opts.kernel,
            opts.precision,
        );
        let run =
            engine::accumulate_chunk(&ctx, &lab, &opts, b, 0, wm, EngineConfig::serial()).unwrap();
        assert_eq!(run.counts, out.watermark);
    }

    #[test]
    fn resume_from_prefix_reuses_paid_work() {
        let (data, labels) = mixed_data();
        let opts = PmaxtOptions::default().permutations(1000);
        let (lab, b, prepared) = prepare_run(&data, &labels, &opts).unwrap();
        let ctx = MaxTContext::with_scorer(
            &prepared,
            &lab,
            opts.test,
            opts.side,
            opts.kernel,
            opts.precision,
        );
        let prefix =
            engine::accumulate_chunk(&ctx, &lab, &opts, b, 0, 300, EngineConfig::serial()).unwrap();
        let cfg = AdaptiveConfig {
            tail_top: 0,
            ..AdaptiveConfig::default()
        };
        let mut runner =
            AdaptiveRunner::new(&ctx, &prepared, &lab, &opts, b, EngineConfig::serial(), cfg);
        runner.resume_from(&prefix.counts);
        let out = runner.run(ChunkHooks::default()).unwrap();
        // The prefix was free; only the remainder counts against the budget.
        assert!(out.report.gene_perms_scored <= 12 * 700);
        assert!(out.report.watermark >= 300);
        // Bounds still contain the exact p-values.
        let exact = mt_maxt(&data, &labels, &opts).unwrap();
        for g in 0..12 {
            if !exact.rawp[g].is_nan() {
                assert!(out.report.p_lower[g] <= exact.rawp[g] + 1e-12);
                assert!(exact.rawp[g] <= out.report.p_upper[g] + 1e-12);
            }
        }
    }

    #[test]
    fn non_computable_genes_report_nan_and_do_not_block() {
        let (data, labels) = null_data(6, 10, 3.0);
        let mut v = data.into_vec();
        for c in 0..10 {
            v[2 * 10 + c] = 7.0; // constant row → NaN statistic
        }
        let data = Matrix::from_vec(6, 10, v).unwrap();
        let opts = PmaxtOptions::default().permutations(3000);
        let out = adaptive_maxt(&data, &labels, &opts, &AdaptiveConfig::default()).unwrap();
        assert!(out.report.p_lower[2].is_nan());
        assert!(out.report.p_point[2].is_nan());
        assert!(out.result.rawp[2].is_nan());
        assert!(out.report.genes_stopped() >= 4, "null genes still stop");
    }

    #[test]
    fn strong_signal_gets_a_tail_fit_with_sub_resolution_p() {
        let (data, labels) = mixed_data();
        let opts = PmaxtOptions::default().permutations(3000);
        let cfg = AdaptiveConfig {
            tail_m: 1500,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_maxt(&data, &labels, &opts, &cfg).unwrap();
        // Gene 0's observed statistic is extreme: a tail fit should exist
        // for at least one of the planted genes.
        let fitted: Vec<usize> = (0..12).filter(|&g| out.report.tail[g].is_some()).collect();
        assert!(!fitted.is_empty(), "no gene got a tail fit");
        for &g in &fitted {
            let fit = out.report.tail[g].as_ref().unwrap();
            assert!(fit.scale > 0.0);
            assert!(fit.exceedances >= 8);
            assert!(fit.p_tail > 0.0 && fit.p_tail <= 1.0);
        }
    }

    #[test]
    fn works_across_methods_and_stored_sampling() {
        let (data, labels) = mixed_data();
        for opts in [
            PmaxtOptions::default()
                .permutations(600)
                .test(TestMethod::Wilcoxon),
            PmaxtOptions::default()
                .permutations(600)
                .fixed_seed_sampling("n")
                .unwrap(),
        ] {
            let exact = mt_maxt(&data, &labels, &opts).unwrap();
            let out = adaptive_maxt(&data, &labels, &opts, &AdaptiveConfig::default()).unwrap();
            for g in 0..12 {
                if !exact.rawp[g].is_nan() {
                    assert!(out.report.p_lower[g] <= exact.rawp[g] + 1e-12);
                    assert!(exact.rawp[g] <= out.report.p_upper[g] + 1e-12);
                }
            }
        }
    }
}
