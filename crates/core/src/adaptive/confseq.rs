//! Anytime-valid confidence sequences for Bernoulli proportions, and the
//! deterministic p-value envelope the adaptive runner reports.
//!
//! Two distinct bounds live here, and the distinction carries the subsystem's
//! correctness story:
//!
//! - [`cs_lower_bound`]/[`cs_upper_bound`]: a Robbins-mixture confidence
//!   sequence over the per-gene exceedance process. Valid *at every sample
//!   size simultaneously* (the anytime-valid property), so the runner may
//!   peek after every chunk without inflating the error rate. These drive
//!   the **stop decision only** — a gene is deactivated once the lower bound
//!   on its raw p-value clears the non-significance threshold.
//! - [`envelope`]: the deterministic interval `[k/B, (k + B - c)/B]` for a
//!   gene whose exceedance count is `k` after scoring a `c`-permutation
//!   prefix of the `B`-permutation stream. Each unscored permutation
//!   contributes 0 or 1 exceedances, so the exact-mode p-value lies in this
//!   interval **with certainty**, not merely with probability `1 - α`. This
//!   is what adaptive results *report*, and what the proptest oracle checks.

/// Natural log of the gamma function (Lanczos approximation, g = 7, 9
/// coefficients — accurate to ~15 significant digits for positive `x`).
///
/// Hand-rolled because `f64::ln_gamma` is unstable and the crate takes no
/// numeric dependencies.
pub fn ln_gamma(x: f64) -> f64 {
    // Canonical published Lanczos coefficients, kept verbatim even where
    // they carry more digits than f64 resolves.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const PI: f64 = std::f64::consts::PI;
    if x < 0.5 {
        // Reflection formula keeps the approximation in its accurate range.
        PI.ln() - (PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// `ln C(n, k)` via [`ln_gamma`].
pub fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Log of the Robbins confidence-sequence criterion at proportion `p`:
/// `ln[(n+1) · C(n,k) · p^k · (1-p)^(n-k) / α]`. The level-`(1-α)` confidence
/// set is `{p : criterion ≥ 0}`; by Robbins (1970) it covers the true `p` at
/// **every** `n` simultaneously with probability at least `1 - α`.
fn ln_criterion(k: u64, n: u64, alpha: f64, p: f64) -> f64 {
    let mut v = ((n + 1) as f64).ln() + ln_choose(n, k) - alpha.ln();
    if k > 0 {
        v += k as f64 * p.ln();
    }
    if n > k {
        v += (n - k) as f64 * (1.0 - p).ln();
    }
    v
}

/// Bisect `ln_criterion = 0` on `[lo, hi]`, where the criterion is negative
/// at `lo` and non-negative at `hi` (or vice versa — the caller orients it).
fn bisect(k: u64, n: u64, alpha: f64, mut lo: f64, mut hi: f64) -> f64 {
    // The criterion is concave in p with its maximum at the MLE k/n, so a
    // sign change between the endpoints pins a unique root.
    let rising = ln_criterion(k, n, alpha, lo) < 0.0;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let c = ln_criterion(k, n, alpha, mid);
        if (c < 0.0) == rising {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Anytime-valid lower confidence bound on a Bernoulli proportion after
/// observing `k` successes in `n` trials. Monotone non-decreasing in the
/// evidence: more trials at the same rate tighten it toward `k/n`.
pub fn cs_lower_bound(k: u64, n: u64, alpha: f64) -> f64 {
    assert!(k <= n, "successes exceed trials");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    if n == 0 || k == 0 {
        return 0.0;
    }
    let mle = k as f64 / n as f64;
    // (n+1)·P(X = k) ≥ 1 at the MLE (the binomial mode is at least the
    // uniform mass 1/(n+1)), so the confidence set is never empty and the
    // criterion is non-negative at `mle`.
    if ln_criterion(k, n, alpha, f64::MIN_POSITIVE) >= 0.0 {
        return 0.0;
    }
    bisect(k, n, alpha, f64::MIN_POSITIVE, mle)
}

/// Anytime-valid upper confidence bound, the mirror of [`cs_lower_bound`].
pub fn cs_upper_bound(k: u64, n: u64, alpha: f64) -> f64 {
    assert!(k <= n, "successes exceed trials");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    if n == 0 || k == n {
        return 1.0;
    }
    let mle = k as f64 / n as f64;
    let hi = 1.0 - f64::EPSILON;
    if ln_criterion(k, n, alpha, hi) >= 0.0 {
        return 1.0;
    }
    bisect(k, n, alpha, mle, hi)
}

/// Deterministic envelope on the exact-mode raw p-value of a gene that
/// counted `count` exceedances over a scored prefix of `scored` of the `B`
/// total permutations: every unscored permutation adds 0 or 1, so
/// `p_exact ∈ [count/B, (count + B - scored)/B]` with certainty.
pub fn envelope(count: u64, scored: u64, b: u64) -> (f64, f64) {
    assert!(scored <= b, "scored prefix longer than the run");
    assert!(count <= scored, "count exceeds scored permutations");
    let b_f = b as f64;
    (count as f64 / b_f, (count + (b - scored)) as f64 / b_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-11);
        // ln C(10, 3) = ln 120
        assert!((ln_choose(10, 3) - 120.0f64.ln()).abs() < 1e-10);
        assert!((ln_choose(52, 5) - 2_598_960.0f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn bounds_bracket_the_mle_and_tighten_with_evidence() {
        let alpha = 0.05;
        let mut last_width = f64::INFINITY;
        for n in [40u64, 160, 640, 2560] {
            let k = n / 2;
            let lo = cs_lower_bound(k, n, alpha);
            let hi = cs_upper_bound(k, n, alpha);
            let mle = k as f64 / n as f64;
            assert!(lo <= mle && mle <= hi, "n={n}: [{lo}, {hi}] vs {mle}");
            assert!(lo > 0.0 && hi < 1.0, "n={n} should exclude the endpoints");
            let width = hi - lo;
            assert!(width < last_width, "n={n}: interval must shrink");
            last_width = width;
        }
    }

    #[test]
    fn extreme_counts_hit_the_boundaries() {
        assert_eq!(cs_lower_bound(0, 100, 0.05), 0.0);
        assert_eq!(cs_upper_bound(100, 100, 0.05), 1.0);
        assert_eq!(cs_lower_bound(0, 0, 0.05), 0.0);
        assert_eq!(cs_upper_bound(0, 0, 0.05), 1.0);
        // One success in many trials: lower bound positive but tiny.
        let lo = cs_lower_bound(1, 10_000, 0.05);
        assert!(lo > 0.0 && lo < 1e-3, "lo = {lo}");
    }

    #[test]
    fn null_rate_clears_a_non_significance_threshold_quickly() {
        // A gene with p ≈ 0.5 must be certifiably above 0.1 within a few
        // hundred permutations — the workhorse of the deactivation sweep.
        let lo = cs_lower_bound(64, 128, 0.05);
        assert!(lo > 0.1, "n=128, k=64: lower bound {lo} should exceed 0.1");
        // But a borderline gene must not be: k/n = 0.12 at n = 128 is too
        // close to 0.1 to certify.
        let lo = cs_lower_bound(15, 128, 0.05);
        assert!(lo < 0.1, "borderline gene wrongly certified: {lo}");
    }

    #[test]
    fn smaller_alpha_widens_the_sequence() {
        let tight = cs_lower_bound(50, 100, 0.2);
        let loose = cs_lower_bound(50, 100, 0.001);
        assert!(loose < tight);
    }

    #[test]
    fn envelope_is_exact_arithmetic() {
        // Fully scored: collapses to the exact p-value.
        assert_eq!(envelope(7, 100, 100), (0.07, 0.07));
        // Half scored: the unscored half is the slack.
        let (lo, hi) = envelope(10, 50, 100);
        assert_eq!(lo, 0.10);
        assert_eq!(hi, 0.60);
        // Nothing counted yet.
        assert_eq!(envelope(0, 0, 10), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "scored prefix longer")]
    fn envelope_rejects_inverted_prefix() {
        envelope(0, 11, 10);
    }
}
