//! Generalized-Pareto tail approximation of the smallest p-values, after
//! permApprox (Winkler et al.) and Knijnenburg et al. (2009): the upper tail
//! of a gene's permutation score distribution is approximately GPD by the
//! Pickands–Balkema–de Haan theorem, so a modest sample of permutation
//! scores yields a *continuous* tail estimate far below the `1/B` resolution
//! floor of the empirical p-value.
//!
//! The fit is moment-matched (the permApprox default): with excess mean `m`
//! and variance `s²`, shape `ξ = (1 − m²/s²)/2` and scale
//! `σ = m(1 + m²/s²)/2`. Every fit carries diagnostics — the tail threshold,
//! the fitted shape/scale, and an Anderson–Darling-style goodness flag — so
//! a consumer can see *when the approximation is trustworthy*, not just its
//! point estimate.

use crate::error::Result;
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::MaxTContext;
use crate::options::PmaxtOptions;
use crate::perm::build_generator;
use crate::stats::scorer::build_scorer;

use super::runner::sub_matrix;
use super::AdaptiveConfig;

/// A fitted generalized-Pareto tail for one gene, with diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TailFit {
    /// Score threshold `u` above which the GPD models the tail.
    pub threshold: f64,
    /// GPD shape `ξ` (ξ < 0: bounded tail, ξ = 0: exponential, ξ > 0: heavy).
    pub shape: f64,
    /// GPD scale `σ` (> 0).
    pub scale: f64,
    /// Number of threshold excesses the fit used.
    pub exceedances: usize,
    /// Tail-approximated p-value at the observed score.
    pub p_tail: f64,
    /// Anderson–Darling-style statistic of the excesses against the fit.
    pub ad_stat: f64,
    /// Goodness flag: `ad_stat` below the acceptance cut — the moment fit
    /// describes the sampled tail well enough to quote `p_tail`.
    pub good: bool,
}

/// Acceptance cut for the Anderson–Darling-style statistic. The asymptotic
/// 5%-level critical values for a GPD with estimated parameters sit near
/// 0.75–1.1 depending on the shape (Choulakian & Stephens 2001); one fixed
/// cut keeps the flag simple and errs toward flagging dubious fits.
const AD_CUT: f64 = 1.0;

/// GPD survival function `P(Y > y)` for an excess `y ≥ 0`.
pub fn gpd_survival(y: f64, shape: f64, scale: f64) -> f64 {
    debug_assert!(scale > 0.0);
    if y <= 0.0 {
        return 1.0;
    }
    if shape.abs() < 1e-12 {
        return (-y / scale).exp();
    }
    let t = 1.0 + shape * y / scale;
    if t <= 0.0 {
        // Beyond the upper endpoint of a bounded (ξ < 0) tail.
        return 0.0;
    }
    t.powf(-1.0 / shape)
}

/// Moment-matched GPD parameters `(shape, scale)` from threshold excesses.
/// `None` when the sample is degenerate (zero variance).
pub fn fit_gpd_moments(excesses: &[f64]) -> Option<(f64, f64)> {
    let n = excesses.len() as f64;
    if excesses.len() < 2 {
        return None;
    }
    let mean = excesses.iter().sum::<f64>() / n;
    let var = excesses
        .iter()
        .map(|&y| (y - mean) * (y - mean))
        .sum::<f64>()
        / (n - 1.0);
    // NaN-safe positivity guards: a NaN moment must bail, not fit.
    if !mean.is_finite() || mean <= 0.0 || !var.is_finite() || var <= 0.0 {
        return None;
    }
    let r = mean * mean / var;
    let shape = 0.5 * (1.0 - r);
    let scale = 0.5 * mean * (1.0 + r);
    if !scale.is_finite() || scale <= 0.0 || !shape.is_finite() {
        return None;
    }
    Some((shape, scale))
}

/// Anderson–Darling-style statistic of `excesses` (any order) against a
/// fitted GPD — the standard A² formula over the probability-transformed
/// sample.
pub fn ad_statistic(excesses: &[f64], shape: f64, scale: f64) -> f64 {
    let mut z: Vec<f64> = excesses
        .iter()
        .map(|&y| (1.0 - gpd_survival(y, shape, scale)).clamp(1e-12, 1.0 - 1e-12))
        .collect();
    z.sort_by(|a, b| a.partial_cmp(b).expect("clamped probabilities"));
    let n = z.len();
    let mut s = 0.0;
    for (i, &zi) in z.iter().enumerate() {
        s += (2 * i + 1) as f64 * (zi.ln() + (1.0 - z[n - 1 - i]).ln());
    }
    -(n as f64) - s / n as f64
}

/// Fit a GPD tail to one gene's sampled permutation scores and evaluate the
/// tail p-value at its observed score.
///
/// Returns `None` when no trustworthy fit is possible: the observed score is
/// not beyond the tail threshold (the empirical estimate is fine there), the
/// excesses are too few or degenerate (heavily tied discrete scores), or the
/// sample is dominated by non-computable (−∞) scores.
pub fn fit_tail(scores: &[f64], observed: f64) -> Option<TailFit> {
    let m = scores.len();
    if m < 32 || !observed.is_finite() {
        return None;
    }
    let mut sorted = scores.to_vec();
    // Side::score maps NaN statistics to −∞, so total order holds.
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("scores are NaN-free"));
    // Top ~10% of the sample are the tail excesses, as in permApprox.
    let n_tail = (m / 10).clamp(16, m / 2);
    let u = sorted[n_tail];
    if !u.is_finite() || observed <= u {
        return None;
    }
    let excesses: Vec<f64> = sorted[..n_tail]
        .iter()
        .map(|&s| s - u)
        .filter(|&y| y > 0.0)
        .collect();
    if excesses.len() < 8 {
        return None;
    }
    let (shape, scale) = fit_gpd_moments(&excesses)?;
    let ad = ad_statistic(&excesses, shape, scale);
    // P(score > u) is estimated empirically, the conditional tail by the GPD.
    let tail_mass = excesses.len() as f64 / m as f64;
    let p_tail = (tail_mass * gpd_survival(observed - u, shape, scale)).max(f64::MIN_POSITIVE);
    Some(TailFit {
        threshold: u,
        shape,
        scale,
        exceedances: excesses.len(),
        p_tail,
        ad_stat: ad,
        good: ad < AD_CUT,
    })
}

/// Score the tail-candidate genes over a fresh prefix of the run's
/// permutation stream and fit each one's tail. Returns `(gene, fit)` pairs
/// plus the number of gene-permutations scored (for the budget accounting).
///
/// Candidates are the most significant `tail_top` computable genes — by
/// construction the ones whose p-values are smallest and where the `1/B`
/// resolution floor bites. Only their rows are scored (a tiny sub-matrix),
/// so the pass costs `tail_top × tail_m` gene-permutations, noise next to
/// the main run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tail_pass(
    prepared: &Matrix,
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b: u64,
    ctx: &MaxTContext<'_>,
    config: &AdaptiveConfig,
) -> Result<(Vec<(usize, TailFit)>, u64)> {
    let take = config.tail_m.min(b);
    let candidates: Vec<usize> = ctx
        .order()
        .iter()
        .copied()
        .filter(|&g| ctx.observed_scores()[g] > f64::NEG_INFINITY)
        .take(config.tail_top)
        .collect();
    if candidates.is_empty() || take < 32 {
        return Ok((Vec::new(), 0));
    }
    let sub = sub_matrix(prepared, &candidates);
    let scorer = build_scorer(&sub, labels, opts.test, opts.kernel, opts.precision);
    let mut scratch = scorer.make_scratch();
    let mut gen = build_generator(labels, opts, b)?;
    let mut labels_buf = vec![0u8; prepared.cols()];
    let mut stats = vec![0.0f64; candidates.len()];
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(take as usize); candidates.len()];
    let mut done = 0u64;
    while done < take && gen.next_into(&mut labels_buf) {
        scorer.stats_into(&labels_buf, &mut scratch, &mut stats);
        for (j, &s) in stats.iter().enumerate() {
            samples[j].push(opts.side.score(s));
        }
        done += 1;
    }
    let mut fits = Vec::new();
    for (j, &g) in candidates.iter().enumerate() {
        if let Some(fit) = fit_tail(&samples[j], ctx.observed_scores()[g]) {
            fits.push((g, fit));
        }
    }
    Ok((fits, done * candidates.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_matches_closed_forms() {
        // Exponential limit at ξ = 0.
        assert!((gpd_survival(2.0, 0.0, 1.0) - (-2.0f64).exp()).abs() < 1e-12);
        // Heavy tail ξ = 1, σ = 1: S(y) = 1/(1+y).
        assert!((gpd_survival(3.0, 1.0, 1.0) - 0.25).abs() < 1e-12);
        // Bounded tail ξ = −0.5, σ = 1: endpoint at y = 2.
        assert_eq!(gpd_survival(2.5, -0.5, 1.0), 0.0);
        assert!(gpd_survival(1.9, -0.5, 1.0) > 0.0);
        // No excess → survival 1.
        assert_eq!(gpd_survival(0.0, 0.3, 1.0), 1.0);
    }

    #[test]
    fn moment_fit_recovers_an_exponential_sample() {
        // Deterministic exponential "sample" via inverse-CDF at midpoints:
        // the moment fit must land near ξ = 0, σ = 1 and the AD flag must
        // accept it.
        let n = 400;
        let sample: Vec<f64> = (0..n)
            .map(|i| -(1.0 - (i as f64 + 0.5) / n as f64).ln())
            .collect();
        let (shape, scale) = fit_gpd_moments(&sample).unwrap();
        assert!(shape.abs() < 0.1, "shape {shape} should be near 0");
        assert!((scale - 1.0).abs() < 0.1, "scale {scale} should be near 1");
        let ad = ad_statistic(&sample, shape, scale);
        assert!(ad < AD_CUT, "AD {ad} should accept the generating family");
    }

    #[test]
    fn degenerate_samples_refuse_to_fit() {
        assert_eq!(fit_gpd_moments(&[1.0, 1.0, 1.0]), None);
        assert_eq!(fit_gpd_moments(&[2.0]), None);
        assert_eq!(fit_gpd_moments(&[]), None);
    }

    #[test]
    fn misfit_raises_the_ad_statistic() {
        // A two-point sample is nothing like the smooth GPD fitted to an
        // exponential: evaluating a lumpy empirical sample under mismatched
        // parameters must score far worse than the matched case.
        let n = 200;
        let good: Vec<f64> = (0..n)
            .map(|i| -(1.0 - (i as f64 + 0.5) / n as f64).ln())
            .collect();
        let lumpy: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.01 } else { 3.0 })
            .collect();
        let (shape, scale) = fit_gpd_moments(&good).unwrap();
        let ad_good = ad_statistic(&good, shape, scale);
        let ad_bad = ad_statistic(&lumpy, shape, scale);
        assert!(ad_bad > 10.0 * ad_good, "{ad_bad} vs {ad_good}");
    }

    #[test]
    fn fit_tail_requires_an_extreme_observation() {
        let n = 1000;
        let scores: Vec<f64> = (0..n)
            .map(|i| -(1.0 - (i as f64 + 0.5) / n as f64).ln())
            .collect();
        // Observation deep in the tail: fits, with a sub-empirical p.
        let fit = fit_tail(&scores, 12.0).expect("tail fit");
        assert!(fit.p_tail > 0.0 && fit.p_tail < 1.0 / n as f64);
        assert!(fit.exceedances >= 8);
        assert!(fit.scale > 0.0);
        // Observation in the bulk: the empirical estimate suffices.
        assert!(fit_tail(&scores, 0.5).is_none());
        // Tiny samples refuse.
        assert!(fit_tail(&scores[..16], 12.0).is_none());
    }

    #[test]
    fn constant_scores_refuse_to_fit() {
        let scores = vec![1.0; 500];
        assert!(fit_tail(&scores, 5.0).is_none());
    }
}
