//! The adaptive execution loop: batch-synchronous gene deactivation layered
//! over the exact engine.
//!
//! The runner alternates engine chunks with deactivation sweeps:
//!
//! 1. **Exact-prefix phase** — while no gene has been deactivated, chunks run
//!    through the *full* [`MaxTContext`], so the accumulated counts are a
//!    bitwise-valid prefix of an exact run (raw and step-down adjusted counts
//!    for every gene). The last such accumulator is the **watermark**: it is
//!    exactly what a checkpoint of an exact run at that cursor would hold,
//!    which is what lets jobd cache it and later *upgrade* the adaptive job
//!    to exact by extending `B` through the incremental machinery.
//! 2. **Masked phase** — once any gene stops, subsequent chunks score only
//!    the *live* genes through a sub-matrix context. The permutation stream
//!    is a pure function of `(labels, options, b)` — gene-independent — so
//!    the per-live-gene raw counts are bit-for-bit the contributions an
//!    exact run would have added over the same spans, and the deterministic
//!    envelope `[k/B, (k + B − c)/B]` on each gene's exact p-value holds
//!    with certainty (see [`super::confseq`]).
//!
//! Deactivation decisions use the anytime-valid confidence sequence: a gene
//! stops once the CS lower bound on its raw p-value clears
//! [`AdaptiveConfig::threshold`] — it is then *certifiably* non-significant
//! at any practical level (raw p > threshold implies adjusted p > threshold;
//! step-down adjustment only increases p-values).

use std::sync::atomic::AtomicBool;

use crate::error::Result;
use crate::labels::ClassLabels;
use crate::matrix::Matrix;
use crate::maxt::engine::{self, ChunkHooks, EngineConfig};
use crate::maxt::{CountAccumulator, MaxTContext};
use crate::options::PmaxtOptions;

use super::confseq::{cs_lower_bound, envelope};
use super::tail::tail_pass;
use super::{AdaptiveConfig, AdaptiveOutcome, AdaptiveReport};

/// Extract the rows `genes` of `prepared` into an owned sub-matrix, in the
/// given order. Statistics are per-row functions of the data and labels, so
/// scoring a sub-matrix row is bitwise-identical to scoring the same row in
/// the full matrix.
pub(crate) fn sub_matrix(prepared: &Matrix, genes: &[usize]) -> Matrix {
    let cols = prepared.cols();
    let mut v = Vec::with_capacity(genes.len() * cols);
    for &g in genes {
        v.extend_from_slice(prepared.row(g));
    }
    Matrix::from_vec(genes.len(), cols, v).expect("non-empty gene subset")
}

/// Drives one adaptive run over borrowed, already-prepared inputs.
///
/// Construction mirrors the exact drivers: callers run
/// [`prepare_run`](crate::maxt::serial::prepare_run), build the full
/// [`MaxTContext`], then hand both here. [`AdaptiveRunner::resume_from`]
/// seeds the runner with a cached exact prefix (the jobd cache's
/// `Partial` state) so an adaptive job re-uses whatever exact work any
/// earlier job — adaptive or exact — already paid for.
pub struct AdaptiveRunner<'a> {
    ctx: &'a MaxTContext<'a>,
    prepared: &'a Matrix,
    labels: &'a ClassLabels,
    opts: &'a PmaxtOptions,
    b: u64,
    cfg: EngineConfig,
    config: AdaptiveConfig,
    cursor: u64,
    /// Per-gene: still being scored? Non-computable genes start inactive.
    active: Vec<bool>,
    /// Per-gene permutations scored (prefix length covered by `counts`).
    scored: Vec<u64>,
    /// Per-gene raw exceedance count over the scored prefix.
    counts: Vec<u64>,
    /// Per-gene deactivation cursor (None = ran to completion).
    stopped_at: Vec<Option<u64>>,
    /// Full-gene accumulator — grows only during the exact-prefix phase.
    full_acc: CountAccumulator,
    /// Frozen exact-prefix accumulator once the first gene deactivates.
    watermark: Option<CountAccumulator>,
    /// Genes eligible for deactivation (computable observed statistic).
    candidates: usize,
    stopped: usize,
    gene_perms: u64,
    mass_deactivation: bool,
}

impl<'a> AdaptiveRunner<'a> {
    /// Borrow the run inputs. `b` is the resolved permutation count and
    /// `ctx` must have been built over `prepared` and `labels`.
    pub fn new(
        ctx: &'a MaxTContext<'a>,
        prepared: &'a Matrix,
        labels: &'a ClassLabels,
        opts: &'a PmaxtOptions,
        b: u64,
        cfg: EngineConfig,
        config: AdaptiveConfig,
    ) -> Self {
        let genes = ctx.genes();
        let active: Vec<bool> = ctx
            .observed_scores()
            .iter()
            .map(|&s| s > f64::NEG_INFINITY)
            .collect();
        let candidates = active.iter().filter(|&&a| a).count();
        AdaptiveRunner {
            ctx,
            prepared,
            labels,
            opts,
            b,
            cfg,
            config,
            cursor: 0,
            active,
            scored: vec![0; genes],
            counts: vec![0; genes],
            stopped_at: vec![None; genes],
            full_acc: CountAccumulator::new(genes),
            watermark: None,
            candidates,
            stopped: 0,
            gene_perms: 0,
            mass_deactivation: false,
        }
    }

    /// Seed the runner with a cached full-gene exact prefix (counts over
    /// permutations `[0, counts.n_perm)` of the same stream). The prefix was
    /// already paid for, so it does not count against this run's scored
    /// gene-permutation budget.
    pub fn resume_from(&mut self, counts: &CountAccumulator) {
        assert_eq!(counts.genes(), self.ctx.genes(), "prefix gene count");
        assert!(counts.n_perm <= self.b, "prefix longer than the run");
        assert_eq!(self.cursor, 0, "resume before running");
        self.cursor = counts.n_perm;
        self.full_acc = counts.clone();
        for g in 0..self.ctx.genes() {
            self.scored[g] = counts.n_perm;
            self.counts[g] = counts.count_raw[g];
        }
    }

    /// Chunk length between deactivation sweeps.
    fn chunk_len(&self) -> u64 {
        if self.config.check_every > 0 {
            self.config.check_every
        } else {
            (self.b / 64).max(128)
        }
    }

    /// One deactivation sweep at the current cursor.
    fn sweep(&mut self) {
        if self.cursor < self.config.min_perms {
            return;
        }
        for g in 0..self.ctx.genes() {
            if !self.active[g] {
                continue;
            }
            let lo = cs_lower_bound(self.counts[g], self.scored[g], self.config.alpha);
            if lo > self.config.threshold {
                self.active[g] = false;
                self.stopped_at[g] = Some(self.cursor);
                self.stopped += 1;
            }
        }
        // Mass-deactivation note (once per run): >90% of the eligible genes
        // gone before 10% of the budget usually means the dataset is mostly
        // null and the interesting signal lives in the per-gene diagnostics.
        if !self.mass_deactivation
            && self.candidates > 0
            && 10 * self.stopped > 9 * self.candidates
            && 10 * self.cursor < self.b
        {
            self.mass_deactivation = true;
            eprintln!(
                "note: adaptive mode deactivated {}/{} genes within the first {} of {} \
                 permutations; per-gene diagnostics are in the adaptive report \
                 (stopped_at, p_lower/p_upper bounds, tail_fitted)",
                self.stopped, self.candidates, self.cursor, self.b
            );
        }
    }

    /// Run to completion and assemble the outcome. `hooks` carries the same
    /// cooperative cancel/progress contract as the exact engine
    /// ([`ChunkHooks`]); progress reports permutation-stream advance.
    pub fn run(mut self, hooks: ChunkHooks<'_>) -> Result<AdaptiveOutcome> {
        // A resumed prefix may already justify deactivations.
        if self.cursor > 0 {
            self.sweep();
            if self.stopped > 0 {
                self.watermark = Some(self.full_acc.clone());
            }
        }
        loop {
            if self.cursor >= self.b {
                break;
            }
            let live: Vec<usize> = (0..self.ctx.genes()).filter(|&g| self.active[g]).collect();
            if live.is_empty() && self.full_acc.n_perm > 0 {
                // Every gene resolved; the rest of the stream stays unscored.
                break;
            }
            let take = self.chunk_len().min(self.b - self.cursor);
            if self.watermark.is_none() {
                // Exact-prefix phase: full-gene counts, including the
                // step-down adjusted counts — a valid exact checkpoint.
                let run = engine::accumulate_chunk_hooked(
                    self.ctx,
                    self.labels,
                    self.opts,
                    self.b,
                    self.cursor,
                    take,
                    self.cfg,
                    hooks,
                )?;
                self.full_acc.merge(&run.counts);
                self.gene_perms += self.ctx.genes() as u64 * take;
                for g in 0..self.ctx.genes() {
                    self.counts[g] = self.full_acc.count_raw[g];
                    self.scored[g] += take;
                }
                self.cursor += take;
                self.sweep();
                if self.stopped > 0 {
                    self.watermark = Some(self.full_acc.clone());
                }
            } else {
                // Masked phase: only live rows are scored. The sub-context
                // recomputes the same per-gene observed scores (statistics
                // are per-row), and the generator stream is gene-independent,
                // so each live gene's raw count advances exactly as it would
                // in an exact run. The sub-context's adjusted counts are
                // step-down maxima over a subset and are discarded.
                let sub = sub_matrix(self.prepared, &live);
                let sub_ctx = MaxTContext::with_scorer(
                    &sub,
                    self.labels,
                    self.opts.test,
                    self.opts.side,
                    self.opts.kernel,
                    self.opts.precision,
                );
                let run = engine::accumulate_chunk_hooked(
                    &sub_ctx,
                    self.labels,
                    self.opts,
                    self.b,
                    self.cursor,
                    take,
                    self.cfg,
                    hooks,
                )?;
                self.gene_perms += live.len() as u64 * take;
                for (j, &g) in live.iter().enumerate() {
                    self.counts[g] += run.counts.count_raw[j];
                    self.scored[g] += take;
                }
                self.cursor += take;
                self.sweep();
            }
        }
        self.finish()
    }

    fn finish(mut self) -> Result<AdaptiveOutcome> {
        let genes = self.ctx.genes();
        // No deactivation ever happened: the full accumulator covers the
        // whole run and the result is bitwise-exact.
        let watermark = self
            .watermark
            .take()
            .unwrap_or_else(|| self.full_acc.clone());
        let result = self.ctx.finalize(&watermark);
        let (tail_fits, tail_perms) = tail_pass(
            self.prepared,
            self.labels,
            self.opts,
            self.b,
            self.ctx,
            &self.config,
        )?;
        self.gene_perms += tail_perms;
        let mut tail: Vec<Option<super::TailFit>> = vec![None; genes];
        for (g, fit) in tail_fits {
            tail[g] = Some(fit);
        }
        let mut p_lower = vec![f64::NAN; genes];
        let mut p_upper = vec![f64::NAN; genes];
        let mut p_point = vec![f64::NAN; genes];
        for g in 0..genes {
            if self.ctx.observed_scores()[g] > f64::NEG_INFINITY && self.scored[g] > 0 {
                let (lo, hi) = envelope(self.counts[g], self.scored[g], self.b);
                p_lower[g] = lo;
                p_upper[g] = hi;
                p_point[g] = self.counts[g] as f64 / self.scored[g] as f64;
            }
        }
        let report = AdaptiveReport {
            b: self.b,
            scored: self.scored,
            counts: self.counts,
            stopped_at: self.stopped_at,
            p_lower,
            p_upper,
            p_point,
            tail,
            gene_perms_scored: self.gene_perms,
            gene_perms_exact: genes as u64 * self.b,
            watermark: watermark.n_perm,
            mass_deactivation: self.mass_deactivation,
        };
        Ok(AdaptiveOutcome {
            result,
            report,
            watermark,
        })
    }
}

/// Convenience alias so jobd can build hooks without importing the engine
/// module directly.
pub fn cancel_hooks<'a>(
    cancel: Option<&'a AtomicBool>,
    progress: Option<&'a (dyn Fn(u64) + Sync)>,
) -> ChunkHooks<'a> {
    ChunkHooks { cancel, progress }
}
