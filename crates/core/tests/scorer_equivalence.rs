//! Property-based equivalence of every fast `Scorer` implementation and the
//! reference scalar scorer: across all eight test methods, all three sides,
//! random matrices, random NA masks and the nonparametric rank transform on
//! or off, the exceedance **counts** (`count_raw`/`count_adj` — the integers
//! every p-value is built from) must be identical. The fast scorers are
//! allowed ulp-level drift in the statistics themselves (absorbed by the
//! maxT EPSILON), but never a different ordering decision.

use proptest::prelude::*;

use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::{CountAccumulator, MaxTContext};
use sprint_core::options::{KernelChoice, PmaxtOptions, TestMethod};
use sprint_core::perm::build_generator;
use sprint_core::side::Side;
use sprint_core::stats::prepare_matrix;

/// Identity labelling for a method: two groups for the two-sample family
/// (`corr` and `tmax` included — both permute two-class labellings), three
/// classes for `f`, alternating pairs for `pairt`, and three-treatment
/// blocks for `blockf`.
fn labels_for(method: TestMethod, a: usize, b: usize, c: usize) -> Vec<u8> {
    match method {
        TestMethod::T
        | TestMethod::TEqualVar
        | TestMethod::Wilcoxon
        | TestMethod::Corr
        | TestMethod::TMax => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v
        }
        TestMethod::F => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v.extend(std::iter::repeat_n(2u8, c));
            v
        }
        TestMethod::PairT => (0..a + b).flat_map(|_| [0u8, 1u8]).collect(),
        TestMethod::BlockF => (0..a + b).flat_map(|_| [0u8, 1u8, 2u8]).collect(),
    }
}

/// A random dataset for one (method, side, nonpara) cell: genes×cols values
/// in a range that stresses cancellation (means far from zero), plus an
/// independent NA mask sprinkled over the cells.
#[allow(clippy::type_complexity)]
fn dataset() -> impl Strategy<Value = (usize, usize, u8, bool, Vec<f64>, Vec<bool>, Vec<u8>, u64)> {
    (0usize..8, 2usize..5, 2usize..5, 2usize..4, 2usize..6).prop_flat_map(
        |(method_sel, a, b, c, genes)| {
            let labels = labels_for(TestMethod::ALL[method_sel], a, b, c);
            let cells = genes * labels.len();
            (
                Just(method_sel),
                Just(genes),
                0u8..3, // side selector
                proptest::bool::weighted(0.5),
                proptest::collection::vec(-50.0f64..150.0, cells),
                proptest::collection::vec(proptest::bool::weighted(0.12), cells),
                Just(labels),
                16u64..64, // permutation count
            )
        },
    )
}

fn accumulate_with(
    prepared: &Matrix,
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b: u64,
    kernel: KernelChoice,
) -> (bool, CountAccumulator) {
    let ctx = MaxTContext::with_scorer(
        prepared,
        labels,
        opts.test,
        opts.side,
        kernel,
        opts.precision,
    );
    let mut gen = build_generator(labels, opts, b).unwrap();
    let mut acc = CountAccumulator::new(prepared.rows());
    ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
    (ctx.uses_fast_scorer(), acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_and_scalar_counts_are_identical(
        (method_sel, genes, side_sel, nonpara, mut values, na_mask, raw_labels, b) in dataset()
    ) {
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let method = TestMethod::ALL[method_sel];
        let side = [Side::Abs, Side::Upper, Side::Lower][side_sel as usize];
        let cols = raw_labels.len();
        let m = Matrix::from_vec(genes, cols, values).unwrap();
        let labels = ClassLabels::new(raw_labels, method).unwrap();
        let opts = PmaxtOptions::default()
            .test(method)
            .side(side)
            .nonpara(nonpara)
            .permutations(b);
        let prepared = prepare_matrix(&m, method, nonpara);

        let (scalar_active, scalar) =
            accumulate_with(&prepared, &labels, &opts, b, KernelChoice::Scalar);
        let (fast_active, fast) =
            accumulate_with(&prepared, &labels, &opts, b, KernelChoice::Fast);

        // Every method now has a fast scorer; NA rows never force a
        // downgrade, so this test can never silently degrade to
        // scalar-vs-scalar — unless `SPRINT_KERNEL` deliberately pins one
        // path (the CI scalar leg does exactly that to exercise the
        // override plumbing).
        match std::env::var("SPRINT_KERNEL").ok().as_deref() {
            Some("scalar") => prop_assert!(!fast_active),
            Some("fast") | Some("auto") => {
                prop_assert!(scalar_active);
                prop_assert!(fast_active);
            }
            _ => {
                prop_assert!(!scalar_active);
                prop_assert!(fast_active);
            }
        }

        // Under `SPRINT_PRECISION=f32` (a dedicated CI leg) the fast path
        // accumulates in f32 and may legitimately make different ordering
        // decisions than the f64 reference, so exact count equality does not
        // hold. What must hold instead: the f32 path is deterministic (same
        // inputs → bitwise-identical counts on a second run), it consumes the
        // same permutation stream, and every count is structurally valid.
        if std::env::var("SPRINT_PRECISION").ok().as_deref() == Some("f32") {
            let (_, fast2) = accumulate_with(&prepared, &labels, &opts, b, KernelChoice::Fast);
            prop_assert_eq!(&fast.count_raw, &fast2.count_raw,
                "f32 fast path is not deterministic: {:?} {:?} nonpara={} B={}",
                method, side, nonpara, b);
            prop_assert_eq!(&fast.count_adj, &fast2.count_adj);
            prop_assert_eq!(scalar.n_perm, fast.n_perm);
            prop_assert_eq!(fast.n_perm, fast2.n_perm);
            for &c in fast.count_raw.iter().chain(&fast.count_adj) {
                prop_assert!(c <= fast.n_perm, "count {} exceeds n_perm {}", c, fast.n_perm);
            }
            return Ok(());
        }

        prop_assert_eq!(&scalar.count_raw, &fast.count_raw,
            "raw counts differ: {:?} {:?} nonpara={} B={}", method, side, nonpara, b);
        prop_assert_eq!(&scalar.count_adj, &fast.count_adj,
            "adjusted counts differ: {:?} {:?} nonpara={} B={}", method, side, nonpara, b);
        prop_assert_eq!(scalar.n_perm, fast.n_perm);
    }
}
