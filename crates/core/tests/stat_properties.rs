//! Property-based tests of the statistic implementations: invariances that
//! must hold for *any* data, independent of the permutation machinery.

use proptest::prelude::*;

use sprint_core::stats::block_f::block_f;
use sprint_core::stats::f_stat::oneway_f;
use sprint_core::stats::pair_t::paired_t;
use sprint_core::stats::ranks::midranks;
use sprint_core::stats::two_sample::{equalvar_t, welch_t};
use sprint_core::stats::wilcoxon::wilcoxon_from_ranks;

fn finite_row(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn t_statistics_affine_invariance(
        row in finite_row(10),
        shift in -1000.0f64..1000.0,
        scale in 0.1f64..50.0,
    ) {
        let labels = [0u8, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let transformed: Vec<f64> = row.iter().map(|v| v * scale + shift).collect();
        for f in [welch_t, equalvar_t] {
            let a = f(&row, &labels);
            let b = f(&transformed, &labels);
            prop_assert!(
                (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-6,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn t_statistics_antisymmetric_under_group_swap(row in finite_row(9)) {
        let labels = [0u8, 0, 0, 0, 1, 1, 1, 1, 1];
        let swapped: Vec<u8> = labels.iter().map(|&l| 1 - l).collect();
        for f in [welch_t, equalvar_t] {
            let a = f(&row, &labels);
            let b = f(&row, &swapped);
            prop_assert!(
                (a.is_nan() && b.is_nan()) || (a + b).abs() < 1e-9,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn f_statistic_invariant_under_class_relabeling(row in finite_row(9)) {
        // Renaming the classes (0,1,2) -> (2,0,1) must not change F.
        let labels = [0u8, 0, 0, 1, 1, 1, 2, 2, 2];
        let renamed: Vec<u8> = labels.iter().map(|&l| (l + 2) % 3).collect();
        let a = oneway_f(&row, &labels, 3);
        let b = oneway_f(&row, &renamed, 3);
        prop_assert!(
            (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-6 * a.abs().max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn f_nonnegative(row in finite_row(12)) {
        let labels = [0u8, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
        let f = oneway_f(&row, &labels, 3);
        prop_assert!(f.is_nan() || f >= 0.0);
    }

    #[test]
    fn wilcoxon_depends_only_on_order(row in finite_row(8)) {
        // Any strictly monotone transform preserves ranks, hence the
        // statistic.
        let labels = [0u8, 1, 0, 1, 0, 1, 0, 1];
        let monotone: Vec<f64> = row.iter().map(|v| v.powi(3) + 2.0 * v).collect();
        let a = wilcoxon_from_ranks(&midranks(&row), &labels);
        let b = wilcoxon_from_ranks(&midranks(&monotone), &labels);
        prop_assert!(
            (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-9,
            "{a} vs {b}"
        );
    }

    #[test]
    fn midranks_are_a_valid_ranking(row in finite_row(12)) {
        let r = midranks(&row);
        // Sum preserved and every rank in [1, n].
        let n = row.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        for &v in &r {
            prop_assert!((1.0..=n).contains(&v));
        }
        // Order-consistency: x_i < x_j ⇒ rank_i < rank_j.
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] < row[j] {
                    prop_assert!(r[i] < r[j]);
                }
            }
        }
    }

    #[test]
    fn paired_t_flips_with_all_labels(row in finite_row(12)) {
        let fwd = [0u8, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let rev = [1u8, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        let a = paired_t(&row, &fwd);
        let b = paired_t(&row, &rev);
        prop_assert!(
            (a.is_nan() && b.is_nan()) || (a + b).abs() < 1e-9,
            "{a} vs {b}"
        );
    }

    #[test]
    fn paired_t_ignores_constant_pair_offsets(
        row in finite_row(12),
        offsets in proptest::collection::vec(-500.0f64..500.0, 6),
    ) {
        // Adding a constant to BOTH members of a pair leaves differences
        // unchanged.
        let labels = [0u8, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let mut shifted = row.clone();
        for (j, &o) in offsets.iter().enumerate() {
            shifted[2 * j] += o;
            shifted[2 * j + 1] += o;
        }
        let a = paired_t(&row, &labels);
        let b = paired_t(&shifted, &labels);
        prop_assert!(
            (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-5,
            "{a} vs {b}"
        );
    }

    #[test]
    fn block_f_invariant_to_block_level_shifts(
        row in finite_row(12),
        offsets in proptest::collection::vec(-500.0f64..500.0, 4),
    ) {
        // Block F adjusts for block differences: shifting a whole block must
        // not change the statistic (this is the method's defining property).
        let labels = [0u8, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
        let mut shifted = row.clone();
        for (b, &o) in offsets.iter().enumerate() {
            for t in 0..3 {
                shifted[b * 3 + t] += o;
            }
        }
        let a = block_f(&row, &labels, 3);
        let b = block_f(&shifted, &labels, 3);
        prop_assert!(
            (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-4 * a.abs().max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn welch_equals_equalvar_for_balanced_equal_variance_shape(
        half in finite_row(6),
        delta in -10.0f64..10.0,
    ) {
        // With equal group sizes AND mirrored within-group values the two
        // pooled estimates coincide, so the statistics must agree.
        let mut row: Vec<f64> = half.clone();
        row.extend(half.iter().map(|v| v + delta)); // same shape, shifted
        let labels = [0u8, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let a = welch_t(&row, &labels);
        let b = equalvar_t(&row, &labels);
        prop_assert!(
            (a.is_nan() && b.is_nan()) || (a - b).abs() < 1e-7 * a.abs().max(1.0),
            "{a} vs {b}"
        );
    }
}
