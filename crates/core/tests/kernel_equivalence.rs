//! Property-based equivalence of the sufficient-statistic fast kernel and
//! the scalar kernel: across random matrices, NA patterns, sides and
//! permutation counts, the exceedance **counts** (`count_raw`/`count_adj` —
//! the integers every p-value is built from) must be identical. The fast
//! path is allowed ulp-level drift in the statistics themselves (absorbed by
//! the maxT EPSILON), but never a different count.

use proptest::prelude::*;

use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::{CountAccumulator, MaxTContext};
use sprint_core::options::{KernelChoice, PmaxtOptions, TestMethod};
use sprint_core::perm::build_generator;
use sprint_core::side::Side;
use sprint_core::stats::prepare_matrix;

/// A random two-class dataset: genes×(n0+n1) values in a range that
/// stresses cancellation (means far from zero), plus an independent NA mask
/// sprinkled over the cells.
fn dataset() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<bool>, u8, u8, u64)> {
    (2usize..6, 2usize..5, 2usize..5).prop_flat_map(|(genes, n0, n1)| {
        let cells = genes * (n0 + n1);
        (
            Just(genes),
            Just(n0),
            Just(n1),
            proptest::collection::vec(-50.0f64..150.0, cells),
            proptest::collection::vec(proptest::bool::weighted(0.12), cells),
            0u8..3,    // side selector
            0u8..3,    // method selector
            16u64..80, // permutation count
        )
    })
}

fn accumulate_with(
    prepared: &Matrix,
    labels: &ClassLabels,
    opts: &PmaxtOptions,
    b: u64,
    kernel: KernelChoice,
) -> (bool, CountAccumulator) {
    let ctx = MaxTContext::with_kernel(prepared, labels, opts.test, opts.side, kernel);
    let mut gen = build_generator(labels, opts, b).unwrap();
    let mut acc = CountAccumulator::new(prepared.rows());
    ctx.accumulate(&mut *gen, u64::MAX, &mut acc);
    (ctx.uses_fast_kernel(), acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_and_scalar_counts_are_identical(
        (genes, n0, n1, mut values, na_mask, side_sel, method_sel, b) in dataset()
    ) {
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let cols = n0 + n1;
        let method = [TestMethod::T, TestMethod::TEqualVar, TestMethod::Wilcoxon]
            [method_sel as usize];
        let side = [Side::Abs, Side::Upper, Side::Lower][side_sel as usize];
        let m = Matrix::from_vec(genes, cols, values).unwrap();
        let mut raw_labels = vec![0u8; n0];
        raw_labels.extend(std::iter::repeat_n(1u8, n1));
        let labels = ClassLabels::new(raw_labels, method).unwrap();
        let opts = PmaxtOptions::default()
            .test(method)
            .side(side)
            .permutations(b);
        let prepared = prepare_matrix(&m, method, false);

        let (_, scalar) =
            accumulate_with(&prepared, &labels, &opts, b, KernelChoice::Scalar);
        let (fast_active, fast) =
            accumulate_with(&prepared, &labels, &opts, b, KernelChoice::Fast);

        // Unless every row drew an NA, the fast kernel must actually engage —
        // otherwise this test silently degrades to scalar-vs-scalar.
        let all_rows_na = (0..genes).all(|g| prepared.row(g).iter().any(|v| v.is_nan()));
        prop_assert_eq!(fast_active, !all_rows_na);

        prop_assert_eq!(&scalar.count_raw, &fast.count_raw,
            "raw counts differ: {method:?} {side:?} B={b}");
        prop_assert_eq!(&scalar.count_adj, &fast.count_adj,
            "adjusted counts differ: {method:?} {side:?} B={b}");
        prop_assert_eq!(scalar.n_perm, fast.n_perm);
    }
}
