//! Property-based determinism of the batched multi-threaded engine: for any
//! random dataset, NA mask, test method, side and permutation count, the
//! engine must produce **bitwise-identical** results for every thread count
//! and batch size — `threads = 1, batch = 1` (the one-permutation-at-a-time
//! reference geometry) versus multi-threaded, large-batch runs.
//!
//! This is the contract that lets `pmaxt`, checkpoint resume and the CLI all
//! dispatch through the same engine regardless of `SPRINT_THREADS`: geometry
//! may change the schedule, never the answer.

use proptest::prelude::*;

use sprint_core::matrix::Matrix;
use sprint_core::maxt::MaxTResult;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_core::prelude::{maxt_with_config, EngineConfig};
use sprint_core::side::Side;

/// Build a label vector satisfying `method`'s design rules from two small
/// size knobs, returning `(labels, samples)`.
fn labels_for(method: TestMethod, a: usize, b: usize) -> Vec<u8> {
    match method {
        // Two-sample designs (corr and tmax permute the same two-class
        // labellings): a samples of class 0, b of class 1.
        TestMethod::T
        | TestMethod::TEqualVar
        | TestMethod::Wilcoxon
        | TestMethod::Corr
        | TestMethod::TMax => {
            let mut l = vec![0u8; a];
            l.extend(std::iter::repeat_n(1u8, b));
            l
        }
        // Multi-class F: three classes of a samples each.
        TestMethod::F => (0..3u8).flat_map(|c| std::iter::repeat_n(c, a)).collect(),
        // Paired t: a pairs, each one (0, 1).
        TestMethod::PairT => std::iter::repeat_n([0u8, 1u8], a).flatten().collect(),
        // Block F: a blocks, each containing treatments 0, 1, 2 once.
        TestMethod::BlockF => std::iter::repeat_n([0u8, 1u8, 2u8], a).flatten().collect(),
    }
}

/// Random workload: method/side selectors, design size knobs, a permutation
/// count and enough cell values + NA mask for the largest possible design.
fn workload() -> impl Strategy<Value = (u8, u8, usize, usize, usize, u64, Vec<f64>, Vec<bool>)> {
    (0u8..8, 0u8..3, 2usize..5, 2usize..5, 2usize..6, 8u64..48).prop_flat_map(
        |(method_sel, side_sel, a, b, genes, perms)| {
            let method = METHODS[method_sel as usize];
            let cells = genes * labels_for(method, a, b).len();
            (
                Just(method_sel),
                Just(side_sel),
                Just(a),
                Just(b),
                Just(genes),
                Just(perms),
                proptest::collection::vec(-40.0f64..120.0, cells),
                proptest::collection::vec(proptest::bool::weighted(0.10), cells),
            )
        },
    )
}

const METHODS: [TestMethod; 8] = [
    TestMethod::T,
    TestMethod::TEqualVar,
    TestMethod::Wilcoxon,
    TestMethod::F,
    TestMethod::PairT,
    TestMethod::BlockF,
    TestMethod::Corr,
    TestMethod::TMax,
];

/// Bitwise equality of two results (`==` on floats would treat the NaN
/// p-values of degenerate genes as unequal; `to_bits` is stricter and
/// NaN-safe).
fn bitwise_eq(x: &MaxTResult, y: &MaxTResult) -> bool {
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
    x.b_used == y.b_used
        && x.order == y.order
        && bits(&x.teststat) == bits(&y.teststat)
        && bits(&x.rawp) == bits(&y.rawp)
        && bits(&x.adjp) == bits(&y.adjp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_thread_and_batch_geometry_is_bit_identical(
        (method_sel, side_sel, a, b, genes, perms, mut values, na_mask) in workload()
    ) {
        let method = METHODS[method_sel as usize];
        let side = [Side::Abs, Side::Upper, Side::Lower][side_sel as usize];
        let labels = labels_for(method, a, b);
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let m = Matrix::from_vec(genes, labels.len(), values).unwrap();
        let opts = PmaxtOptions::default()
            .test(method)
            .side(side)
            .permutations(perms);

        // Reference geometry: one thread, one permutation per batch — the
        // engine degenerates to the classic serial accumulate loop.
        let reference = maxt_with_config(&m, &labels, &opts, EngineConfig::explicit(1, 1))
            .unwrap();
        prop_assert_eq!(reference.b_used, perms);

        for (threads, batch) in [(1, 7), (1, 64), (2, 1), (3, 5), (8, 16), (4, 64)] {
            let run = maxt_with_config(
                &m, &labels, &opts, EngineConfig::explicit(threads, batch),
            ).unwrap();
            prop_assert!(
                bitwise_eq(&reference, &run),
                "geometry divergence: {:?} {:?} threads={} batch={} B={}",
                method, side, threads, batch, perms
            );
        }
    }
}
