//! Tile-geometry invariance of the fast scorers.
//!
//! The SoA fast path processes genes in `SOA_TILE`-wide sub-tiles and
//! samples in `LANE`-wide SIMD chunks with scalar remainders. These tests
//! pin the contract that makes every engine geometry interchangeable: the
//! per-(gene, arrangement) operation sequence is independent of where tile
//! boundaries fall, so splitting a gene range at **any** point — including
//! gene counts that are not a multiple of either width, and odd sample
//! counts that leave lane remainders — reproduces the unsplit result
//! bitwise, NA cells included.

use proptest::prelude::*;

use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::options::{KernelChoice, PmaxtOptions, Precision, TestMethod};
use sprint_core::perm::build_generator;
use sprint_core::stats::prepare_matrix;
use sprint_core::stats::scorer::build_scorer;

/// Valid labels per method. `a`/`b`/`c` are deliberately allowed to be odd
/// so the two-sample and `f` cells exercise lane remainders; the paired and
/// block designs have structural sample counts (pairs / complete blocks).
fn labels_for(method: TestMethod, a: usize, b: usize, c: usize) -> Vec<u8> {
    match method {
        TestMethod::T
        | TestMethod::TEqualVar
        | TestMethod::Wilcoxon
        | TestMethod::Corr
        | TestMethod::TMax => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v
        }
        TestMethod::F => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v.extend(std::iter::repeat_n(2u8, c));
            v
        }
        TestMethod::PairT => (0..a + b).flat_map(|_| [0u8, 1u8]).collect(),
        TestMethod::BlockF => (0..a + b).flat_map(|_| [0u8, 1u8, 2u8]).collect(),
    }
}

#[allow(clippy::type_complexity)]
fn geometry() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<bool>, Vec<u8>, u64)> {
    // Gene counts straddle the SOA_TILE = 128 sub-tile boundary and are
    // almost never a multiple of it; odd a/b/c leave LANE = 8 remainders.
    (0usize..8, 3usize..8, 3usize..8, 2usize..5, 1usize..140).prop_flat_map(
        |(method_sel, a, b, c, genes)| {
            let labels = labels_for(TestMethod::ALL[method_sel], a, b, c);
            let cells = genes * labels.len();
            (
                Just(method_sel),
                Just(genes),
                1usize..(genes + 1), // split point for the tile boundary
                proptest::collection::vec(-40.0f64..120.0, cells),
                proptest::collection::vec(proptest::bool::weighted(0.15), cells),
                Just(labels),
                4u64..12, // batch of arrangements
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting the gene range at an arbitrary point, and scoring one
    /// arrangement at a time through `stats_into`, are both bitwise
    /// identical to one full-width `score_tile` call.
    #[test]
    fn split_tiles_and_single_arrangements_match_full_tile_bitwise(
        (method_sel, genes, split, mut values, na_mask, raw_labels, b) in geometry()
    ) {
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let method = TestMethod::ALL[method_sel];
        let cols = raw_labels.len();
        let m = Matrix::from_vec(genes, cols, values).unwrap();
        let labels = ClassLabels::new(raw_labels, method).unwrap();
        let opts = PmaxtOptions::default().test(method).permutations(b);
        let prepared = prepare_matrix(&m, method, false);
        let scorer = build_scorer(
            &prepared,
            &labels,
            method,
            KernelChoice::Fast,
            Precision::F64,
        );

        // A batch of genuine permutations of the labels.
        let mut gen = build_generator(&labels, &opts, b).unwrap();
        let mut bufs = Vec::new();
        let mut buf = vec![0u8; cols];
        while gen.next_into(&mut buf) {
            bufs.push(buf.clone());
        }
        prop_assert!(!bufs.is_empty());
        let stride = bufs.len();

        // Reference: one score_tile over the whole gene range.
        let mut scratch = scorer.make_scratch();
        scorer.begin_batch(&bufs, &mut scratch);
        let mut full = vec![0.0f64; genes * stride];
        scorer.score_tile(&bufs, 0..genes, &mut scratch, &mut full, stride);

        // Same batch, gene range split at an arbitrary point.
        let mut split_out = vec![0.0f64; genes * stride];
        scorer.score_tile(&bufs, 0..split, &mut scratch, &mut split_out, stride);
        scorer.score_tile(&bufs, split..genes, &mut scratch, &mut split_out, stride);
        for (g, (f, s)) in full.iter().zip(&split_out).enumerate() {
            prop_assert_eq!(
                f.to_bits(), s.to_bits(),
                "split at {} diverges at slot {} ({:?}, {} genes, {} cols)",
                split, g, method, genes, cols
            );
        }

        // Each arrangement scored alone matches its column of the batch.
        let mut one = vec![0.0f64; genes];
        for (j, labelling) in bufs.iter().enumerate() {
            scorer.stats_into(labelling, &mut scratch, &mut one);
            for g in 0..genes {
                prop_assert_eq!(
                    one[g].to_bits(), full[g * stride + j].to_bits(),
                    "arrangement {} gene {} diverges ({:?})", j, g, method
                );
            }
        }
    }
}
