//! Skip-ahead laws of every [`ResamplingStream`] kind, property-tested.
//!
//! The engine, jobd span sharding, and checkpoint resume all lean on one
//! contract: the `j`-th draw of a stream is a pure function of its
//! construction inputs, independent of how positions `0..j` were consumed.
//! These properties pin that contract for **every** stream family the
//! arrangement layer can build — shuffle, paired, block (random fixed-seed,
//! random stored, complete) and the bootstrap index streams — by splitting
//! the sequence at an arbitrary point and checking that head + skipped tail
//! is bitwise-identical to one straight run.

use proptest::prelude::*;
use sprint_core::labels::ClassLabels;
use sprint_core::options::{PmaxtOptions, SamplingMode, TestMethod, Workload};
use sprint_core::perm::arrangement::{build_stream, resolve_draw_count};
use sprint_core::perm::ResamplingStream;

/// One buildable stream configuration: a test design plus the option knobs
/// that select the stream family.
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Label multiset shuffle (t/t.equalvar/wilcoxon/f/corr/tmax designs).
    Shuffle,
    /// Within-pair sign flips (pairt).
    Paired,
    /// Within-block treatment shuffles (blockf).
    Block,
    /// With-replacement bootstrap index draws.
    Bootstrap,
}

const KINDS: [Kind; 4] = [Kind::Shuffle, Kind::Paired, Kind::Block, Kind::Bootstrap];

fn labels_for(kind: Kind) -> ClassLabels {
    match kind {
        Kind::Shuffle => ClassLabels::new(vec![0, 0, 0, 1, 1, 1], TestMethod::T).unwrap(),
        Kind::Paired => ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::PairT).unwrap(),
        Kind::Block => ClassLabels::new(vec![0, 1, 0, 1, 0, 1], TestMethod::BlockF).unwrap(),
        Kind::Bootstrap => ClassLabels::new(vec![0, 0, 0, 1, 1, 1], TestMethod::T).unwrap(),
    }
}

/// Resolve the selectors a case drew into a concrete configuration.
/// `complete` requests `B = 0` (complete enumeration), which exists for the
/// three permutation families but not for with-replacement bootstrap draws;
/// ineligible combinations fall back to the random-`B` stream.
fn config_for(
    kind_sel: usize,
    sampling_sel: usize,
    complete: bool,
    b: u64,
    seed: u64,
) -> (Kind, ClassLabels, PmaxtOptions) {
    let kind = KINDS[kind_sel];
    let sampling = if sampling_sel == 0 {
        SamplingMode::FixedSeedOnTheFly
    } else {
        SamplingMode::Stored
    };
    let b = if complete && !matches!(kind, Kind::Bootstrap) {
        0
    } else {
        b
    };
    let mut opts = PmaxtOptions::default().seed(seed).permutations(b);
    opts.sampling = sampling;
    match kind {
        Kind::Shuffle => opts.test = TestMethod::T,
        Kind::Paired => opts.test = TestMethod::PairT,
        Kind::Block => opts.test = TestMethod::BlockF,
        Kind::Bootstrap => {
            opts.test = TestMethod::T;
            opts.workload = Workload::Bootstrap;
        }
    }
    (kind, labels_for(kind), opts)
}

fn collect(stream: &mut dyn ResamplingStream, cols: usize, take: u64) -> Vec<Vec<u8>> {
    let mut buf = vec![0u8; cols];
    let mut out = Vec::new();
    for _ in 0..take {
        if !stream.next_into(&mut buf) {
            break;
        }
        out.push(buf.clone());
    }
    out
}

proptest! {
    /// Split at any point k: the first k draws of one stream plus the
    /// remainder of a fresh stream skipped to position k reproduce the
    /// straight run byte-for-byte — for every stream family.
    #[test]
    fn split_anywhere_concatenates_to_straight_run(
        kind_sel in 0usize..4,
        sampling_sel in 0usize..2,
        complete in proptest::bool::weighted(0.25),
        b in 2u64..48,
        seed in 0u64..1_000_000,
        split_frac in 0.0f64..1.0,
    ) {
        let (_kind, labels, opts) = config_for(kind_sel, sampling_sel, complete, b, seed);
        let total = resolve_draw_count(&labels, &opts).unwrap();
        let cols = labels.len();

        let mut straight = build_stream(&labels, &opts, total).unwrap().stream;
        prop_assert_eq!(straight.len(), total);
        prop_assert_eq!(straight.position(), 0);
        prop_assert!(!straight.is_empty());
        let all = collect(&mut *straight, cols, total);
        prop_assert_eq!(all.len() as u64, total);
        prop_assert_eq!(straight.position(), total);

        let k = ((split_frac * total as f64).floor() as u64).min(total);

        let mut head = build_stream(&labels, &opts, total).unwrap().stream;
        let head_draws = collect(&mut *head, cols, k);
        prop_assert_eq!(head.position(), k);

        let mut tail = build_stream(&labels, &opts, total).unwrap().stream;
        tail.skip(k);
        prop_assert_eq!(tail.position(), k);
        let tail_draws = collect(&mut *tail, cols, total - k);

        let mut joined = head_draws;
        joined.extend(tail_draws);
        prop_assert_eq!(joined, all);
    }

    /// Skipping in several hops lands on the same draws as one big skip —
    /// the span-sharding pattern where a daemon forwards past every span
    /// owned by other ranks.
    #[test]
    fn multi_hop_skip_equals_single_skip(
        kind_sel in 0usize..4,
        sampling_sel in 0usize..2,
        complete in proptest::bool::weighted(0.25),
        b in 2u64..48,
        seed in 0u64..1_000_000,
        cuts in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let (_kind, labels, opts) = config_for(kind_sel, sampling_sel, complete, b, seed);
        let total = resolve_draw_count(&labels, &opts).unwrap();
        let cols = labels.len();

        // Turn the fractional cuts into skip hops summing to <= total.
        let mut hops: Vec<u64> = Vec::new();
        let mut left = total;
        for c in cuts {
            let h = ((c * left as f64).floor() as u64).min(left);
            hops.push(h);
            left -= h;
        }
        let skipped: u64 = hops.iter().sum();

        let mut hopper = build_stream(&labels, &opts, total).unwrap().stream;
        for h in &hops {
            hopper.skip(*h);
        }
        prop_assert_eq!(hopper.position(), skipped);

        let mut jumper = build_stream(&labels, &opts, total).unwrap().stream;
        jumper.skip(skipped);

        let rest = total - skipped;
        prop_assert_eq!(
            collect(&mut *hopper, cols, rest),
            collect(&mut *jumper, cols, rest)
        );
    }

    /// Draws never depend on the consumer's read history: reading one draw,
    /// then skipping ahead, lands on exactly the draw a straight run sees at
    /// that position.
    #[test]
    fn read_skip_interleaving_is_position_pure(
        kind_sel in 0usize..4,
        sampling_sel in 0usize..2,
        complete in proptest::bool::weighted(0.25),
        b in 2u64..48,
        seed in 0u64..1_000_000,
        split_frac in 0.0f64..1.0,
    ) {
        let (_kind, labels, opts) = config_for(kind_sel, sampling_sel, complete, b, seed);
        let total = resolve_draw_count(&labels, &opts).unwrap();
        let cols = labels.len();
        let k = ((split_frac * total as f64).floor() as u64).min(total - 1);

        let mut reference = build_stream(&labels, &opts, total).unwrap().stream;
        let all = collect(&mut *reference, cols, total);

        // Read one draw, skip to k, read the k-th draw.
        let mut mixed = build_stream(&labels, &opts, total).unwrap().stream;
        let mut buf = vec![0u8; cols];
        prop_assert!(mixed.next_into(&mut buf));
        prop_assert_eq!(&buf, &all[0]);
        if k > 1 {
            mixed.skip(k - 1);
        }
        if k >= 1 {
            prop_assert!(mixed.next_into(&mut buf));
            prop_assert_eq!(&buf, &all[k as usize]);
        }
    }
}
