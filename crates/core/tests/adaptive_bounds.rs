//! Safety contract of the adaptive subsystem.
//!
//! Two properties hold for *any* workload, not just friendly ones:
//!
//! 1. **Envelope containment.** When a gene deactivates after scoring a
//!    prefix `c` of `B` with exceedance count `k`, its exact raw p-value is
//!    deterministically inside `[k/B, (k + B − c)/B]` — the unscored
//!    permutations can each either exceed or not, nothing else. This is a
//!    certainty, independent of the confidence sequence that merely decides
//!    *when* to stop, so it must survive every statistic, every sidedness
//!    and NA-riddled data.
//!
//! 2. **Upgrade to exact.** The run's exact-prefix watermark is a bitwise
//!    prefix of the exact permutation stream: extending it through the
//!    ordinary engine to the full `B` reproduces `mt_maxt` exactly. This is
//!    what lets jobd cache an adaptive run's watermark as an ordinary
//!    checkpoint and later serve an exact submission from it.

use proptest::prelude::*;

use sprint_core::adaptive::{adaptive_maxt, AdaptiveConfig};
use sprint_core::matrix::Matrix;
use sprint_core::maxt::engine::{self, EngineConfig};
use sprint_core::maxt::serial::{mt_maxt, prepare_run};
use sprint_core::maxt::MaxTContext;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_core::side::Side;

const SIDES: [Side; 3] = [Side::Abs, Side::Upper, Side::Lower];

fn labels_for(method: TestMethod, a: usize, b: usize, c: usize) -> Vec<u8> {
    match method {
        TestMethod::T
        | TestMethod::TEqualVar
        | TestMethod::Wilcoxon
        | TestMethod::Corr
        | TestMethod::TMax => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v
        }
        TestMethod::F => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v.extend(std::iter::repeat_n(2u8, c));
            v
        }
        TestMethod::PairT => (0..a + b).flat_map(|_| [0u8, 1u8]).collect(),
        TestMethod::BlockF => (0..a + b).flat_map(|_| [0u8, 1u8, 2u8]).collect(),
    }
}

/// A workload drawn across all eight statistics, all three sides, and an NA
/// mask: `(method_sel, side_sel, genes, values, na_mask, labels)`.
#[allow(clippy::type_complexity)]
fn any_workload() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<bool>, Vec<u8>)> {
    (
        0usize..8,
        0usize..3,
        3usize..7,
        3usize..7,
        2usize..5,
        2usize..24,
    )
        .prop_flat_map(|(method_sel, side_sel, a, b, c, genes)| {
            let labels = labels_for(TestMethod::ALL[method_sel], a, b, c);
            let cells = genes * labels.len();
            (
                Just(method_sel),
                Just(side_sel),
                Just(genes),
                proptest::collection::vec(-8.0f64..8.0, cells),
                proptest::collection::vec(proptest::bool::weighted(0.08), cells),
                Just(labels),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every statistic x side x NA mask, every gene's adaptive envelope
    /// contains the exact-mode raw p-value, NaN-ness agrees gene by gene,
    /// and genes that ran to completion have collapsed bounds equal to it.
    #[test]
    fn adaptive_bounds_contain_the_exact_p_value(
        (method_sel, side_sel, genes, mut values, na_mask, raw_labels) in any_workload()
    ) {
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let method = TestMethod::ALL[method_sel];
        let m = Matrix::from_vec(genes, raw_labels.len(), values).unwrap();
        let opts = PmaxtOptions::default()
            .permutations(240)
            .test(method)
            .side(SIDES[side_sel]);
        let exact = mt_maxt(&m, &raw_labels, &opts).unwrap();
        // Aggressive stopping: sweep often, almost no evidence floor — the
        // regime most likely to violate containment if it were violable.
        let cfg = AdaptiveConfig {
            check_every: 16,
            min_perms: 8,
            threshold: 0.05,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_maxt(&m, &raw_labels, &opts, &cfg).unwrap();
        for g in 0..genes {
            prop_assert_eq!(
                exact.rawp[g].is_nan(), out.report.p_lower[g].is_nan(),
                "NaN disagreement at gene {} ({:?}/{:?})", g, method, SIDES[side_sel]
            );
            if exact.rawp[g].is_nan() {
                continue;
            }
            prop_assert!(
                out.report.p_lower[g] <= exact.rawp[g] + 1e-12
                    && exact.rawp[g] <= out.report.p_upper[g] + 1e-12,
                "gene {} ({:?}/{:?}): exact {} outside [{}, {}] (stopped_at {:?})",
                g, method, SIDES[side_sel], exact.rawp[g],
                out.report.p_lower[g], out.report.p_upper[g],
                out.report.stopped_at[g]
            );
            if out.report.stopped_at[g].is_none() {
                prop_assert_eq!(out.report.scored[g], out.report.b);
                prop_assert!((out.report.p_lower[g] - exact.rawp[g]).abs() < 1e-12);
                prop_assert!((out.report.p_upper[g] - exact.rawp[g]).abs() < 1e-12);
            }
        }
    }

    /// Extending an adaptive run's watermark accumulator through the exact
    /// engine to the full `B` reproduces a fresh exact run bitwise — the
    /// core property behind jobd's adaptive-to-exact upgrade path.
    #[test]
    fn upgrading_the_watermark_to_exact_is_bitwise_identical(
        (method_sel, side_sel, genes, mut values, na_mask, raw_labels) in any_workload()
    ) {
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let method = TestMethod::ALL[method_sel];
        let m = Matrix::from_vec(genes, raw_labels.len(), values).unwrap();
        let opts = PmaxtOptions::default()
            .permutations(200)
            .test(method)
            .side(SIDES[side_sel]);
        let cfg = AdaptiveConfig {
            check_every: 16,
            min_perms: 8,
            tail_top: 0,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_maxt(&m, &raw_labels, &opts, &cfg).unwrap();
        let exact = mt_maxt(&m, &raw_labels, &opts).unwrap();

        let (labels, b, prepared) = prepare_run(&m, &raw_labels, &opts).unwrap();
        let ctx = MaxTContext::with_scorer(
            &prepared,
            &labels,
            opts.test,
            opts.side,
            opts.kernel,
            opts.precision,
        );
        let wm = out.report.watermark;
        prop_assert_eq!(out.watermark.n_perm, wm);
        let mut counts = out.watermark.clone();
        if wm < b {
            let rest = engine::accumulate_chunk(
                &ctx, &labels, &opts, b, wm, b - wm, EngineConfig::serial(),
            ).unwrap();
            counts.merge(&rest.counts);
        }
        let upgraded = ctx.finalize(&counts);
        // Bit-pattern comparison: `MaxTResult`'s derived PartialEq follows
        // IEEE `NaN != NaN`, which would fail on non-computable genes even
        // though the runs are byte-identical.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(upgraded.b_used, exact.b_used);
        prop_assert_eq!(&upgraded.order, &exact.order);
        for (name, got, want) in [
            ("teststat", &upgraded.teststat, &exact.teststat),
            ("rawp", &upgraded.rawp, &exact.rawp),
            ("adjp", &upgraded.adjp, &exact.adjp),
        ] {
            prop_assert_eq!(
                bits(got), bits(want),
                "{} diverged upgrading watermark {} of B={} ({:?}/{:?})",
                name, wm, b, method, SIDES[side_sel]
            );
        }
    }
}
