//! Accuracy contract of the opt-in `f32` accumulation mode.
//!
//! The `f32` fast paths trade bitwise reproducibility for halved memory
//! traffic; what they must NOT trade away is statistical usefulness. This
//! suite pins the documented error model (DESIGN.md §4.10): on
//! well-conditioned data — values of moderate magnitude, no catastrophic
//! variance cancellation — every statistic computed with `f32` accumulators
//! stays within a mixed absolute/relative tolerance of the `f64` reference:
//!
//! ```text
//! |s32 − s64| ≤ TOL · (1 + |s64|),   TOL = 1e-3
//! ```
//!
//! The bound is deliberately loose relative to observed error (typically
//! ~1e-6..1e-5 here): it documents the order of magnitude a user may rely
//! on, not the luck of a particular dataset.

use proptest::prelude::*;

use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::options::{KernelChoice, Precision, TestMethod};
use sprint_core::stats::prepare_matrix;
use sprint_core::stats::scorer::build_scorer;

/// The documented f32-vs-f64 tolerance.
const TOL: f64 = 1e-3;

fn labels_for(method: TestMethod, a: usize, b: usize, c: usize) -> Vec<u8> {
    match method {
        TestMethod::T
        | TestMethod::TEqualVar
        | TestMethod::Wilcoxon
        | TestMethod::Corr
        | TestMethod::TMax => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v
        }
        TestMethod::F => {
            let mut v = vec![0u8; a];
            v.extend(std::iter::repeat_n(1u8, b));
            v.extend(std::iter::repeat_n(2u8, c));
            v
        }
        TestMethod::PairT => (0..a + b).flat_map(|_| [0u8, 1u8]).collect(),
        TestMethod::BlockF => (0..a + b).flat_map(|_| [0u8, 1u8, 2u8]).collect(),
    }
}

#[allow(clippy::type_complexity)]
fn well_conditioned() -> impl Strategy<Value = (usize, usize, Vec<f64>, Vec<bool>, Vec<u8>)> {
    (0usize..8, 3usize..7, 3usize..7, 2usize..5, 2usize..40).prop_flat_map(
        |(method_sel, a, b, c, genes)| {
            let labels = labels_for(TestMethod::ALL[method_sel], a, b, c);
            let cells = genes * labels.len();
            (
                Just(method_sel),
                Just(genes),
                // Moderate magnitudes: f32 sums of dozens of such values keep
                // ~6 significant digits, the regime the bound documents.
                proptest::collection::vec(0.25f64..12.0, cells),
                proptest::collection::vec(proptest::bool::weighted(0.08), cells),
                Just(labels),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For all eight statistics, the f32 fast path's observed statistics are
    /// within `TOL · (1 + |s64|)` of the f64 fast path's, NA cells included,
    /// and the selected path advertises its precision in its name.
    #[test]
    fn f32_statistics_stay_within_the_documented_bound(
        (method_sel, genes, mut values, na_mask, raw_labels) in well_conditioned()
    ) {
        for (v, &is_na) in values.iter_mut().zip(&na_mask) {
            if is_na {
                *v = f64::NAN;
            }
        }
        let method = TestMethod::ALL[method_sel];
        let cols = raw_labels.len();
        let m = Matrix::from_vec(genes, cols, values).unwrap();
        let labels = ClassLabels::new(raw_labels.clone(), method).unwrap();
        let prepared = prepare_matrix(&m, method, false);

        let s64 = build_scorer(&prepared, &labels, method, KernelChoice::Fast, Precision::F64);
        let s32 = build_scorer(&prepared, &labels, method, KernelChoice::Fast, Precision::F32);
        // Under `SPRINT_PRECISION=f32` the environment overrides the explicit
        // f64 request (the override is deliberately stronger than plumbing),
        // so the "reference" is also f32 and the comparison degenerates to a
        // determinism check — still worth running, but the path-name
        // assertion only applies when the reference really is f64.
        let env_forced_f32 = Precision::F64.env_override() == Precision::F32;
        if !env_forced_f32 {
            prop_assert!(!s64.path().ends_with("-f32"), "f64 path mislabeled: {}", s64.path());
        }
        prop_assert!(s32.path().ends_with("-f32"), "f32 path unlabeled: {}", s32.path());

        let mut scratch64 = s64.make_scratch();
        let mut scratch32 = s32.make_scratch();
        let mut out64 = vec![0.0f64; genes];
        let mut out32 = vec![0.0f64; genes];
        s64.stats_into(&raw_labels, &mut scratch64, &mut out64);
        s32.stats_into(&raw_labels, &mut scratch32, &mut out32);

        for (g, (&a64, &a32)) in out64.iter().zip(&out32).enumerate() {
            // Degenerate cells (too few usable samples) must degenerate
            // identically — NaN-ness is a count decision, not an arithmetic
            // one, and counts are integers in both modes.
            prop_assert_eq!(
                a64.is_nan(), a32.is_nan(),
                "NaN disagreement at gene {} ({:?}): f64={} f32={}", g, method, a64, a32
            );
            if a64.is_nan() {
                continue;
            }
            let err = (a32 - a64).abs();
            let bound = TOL * (1.0 + a64.abs());
            prop_assert!(
                err <= bound,
                "gene {} ({:?}): |{} - {}| = {:.3e} exceeds {:.3e}",
                g, method, a32, a64, err, bound
            );
        }
    }
}
