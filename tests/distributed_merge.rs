//! Distributed span merging, checked from first principles: however `0..B`
//! is split across a roster — any participant count, any span size, surplus
//! idle peers included — accumulating the spans independently and merging
//! their exceedance counts in any order reproduces the serial `mt.maxT`
//! result bit for bit, for every statistic and sidedness, over both the
//! in-process and the TCP communicator backends.
//!
//! This is the correctness core of jobd's cross-daemon sharding: the
//! coordinator only ever executes `span_plan` + `slice_spans` spans (locally
//! or on peers) and sums `u64` counts, so these properties are exactly what
//! make a sharded job bitwise-identical to a serial one.

use std::sync::Arc;

use proptest::prelude::*;

use sprint_core::error::Error as CoreError;
use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::engine::{accumulate_chunk_hooked, ChunkHooks, EngineConfig};
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::maxt::{CountAccumulator, MaxTContext};
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_core::perm::resolve_permutation_count;
use sprint_core::pmaxt::{chunk_for_rank, pmaxt_rank, span_plan};
use sprint_core::side::Side;
use sprint_core::stats::prepare_matrix;
use sprint_jobd::shard::slice_spans;

/// Labels with the shape each statistic requires, over eight columns.
fn labels_for(method: TestMethod) -> Vec<u8> {
    match method {
        TestMethod::F => vec![0, 0, 1, 1, 2, 2, 2, 2],
        TestMethod::PairT => vec![0, 1, 0, 1, 1, 0, 0, 1],
        TestMethod::BlockF => vec![0, 1, 1, 0, 0, 1, 1, 0],
        _ => vec![0, 0, 0, 0, 1, 1, 1, 1],
    }
}

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v = Vec::with_capacity(rows * cols);
    for g in 0..rows {
        let shift = if g % 4 == 0 { 1.5 } else { 0.0 };
        for c in 0..cols {
            let bump = if c >= cols / 2 { shift } else { 0.0 };
            v.push(next() * 4.0 - 2.0 + bump);
        }
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

/// Accumulate every span of an arbitrary roster plan independently, merge
/// the counts in a deliberately scrambled order, finalize, and compare with
/// the serial engine.
fn check_split(
    method: TestMethod,
    side: Side,
    genes: usize,
    b: u64,
    participants: usize,
    span: u64,
    seed: u64,
) -> Result<(), String> {
    let classlabel = labels_for(method);
    let matrix = synth_matrix(genes, classlabel.len(), seed);
    let opts = PmaxtOptions {
        test: method,
        side,
        b,
        seed,
        ..PmaxtOptions::default()
    };
    let serial = mt_maxt(&matrix, &classlabel, &opts).unwrap();

    let labels = ClassLabels::new(classlabel.clone(), method).unwrap();
    let b_resolved = resolve_permutation_count(&labels, &opts).unwrap();
    let plan = span_plan(b_resolved, participants).unwrap();

    // The plan tiles 0..B contiguously in participant order; surplus
    // participants get explicit empty spans at (B, 0).
    let mut cursor = 0;
    for &(s, t) in &plan {
        if t == 0 {
            prop_assert_eq!(s, b_resolved, "idle participants park at (B, 0)");
        } else {
            prop_assert_eq!(s, cursor, "spans must tile contiguously");
            cursor += t;
        }
    }
    prop_assert_eq!(cursor, b_resolved, "the plan must cover all of 0..B");

    let prepared = prepare_matrix(&matrix, opts.test, opts.nonpara).into_owned();
    let ctx = MaxTContext::with_scorer(
        &prepared,
        &labels,
        opts.test,
        opts.side,
        opts.kernel,
        opts.precision,
    );
    let mut spans: Vec<(u64, u64)> = plan
        .iter()
        .flat_map(|&(s, t)| slice_spans(s, t, span))
        .collect();
    // Scramble the merge order: exceedance counts are exact integers, so
    // merging is commutative and any completion order is the same answer.
    if spans.len() > 1 {
        let pivot = (seed as usize % (spans.len() - 1)) + 1;
        spans.rotate_left(pivot);
    }
    let mut acc = CountAccumulator::new(prepared.rows());
    for &(s, t) in &spans {
        let hooks = ChunkHooks {
            cancel: None,
            progress: None,
        };
        let run = accumulate_chunk_hooked(
            &ctx,
            &labels,
            &opts,
            b_resolved,
            s,
            t,
            EngineConfig::serial(),
            hooks,
        )
        .unwrap();
        acc.merge(&run.counts);
    }
    let merged = ctx.finalize(&acc);
    prop_assert_eq!(
        merged,
        serial,
        "merged spans must be bitwise-identical to serial \
         ({:?}/{:?}, B={}, {} participants, span {})",
        method,
        side,
        b_resolved,
        participants,
        span
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary geometry, all six statistics × three sides each case.
    #[test]
    fn arbitrary_peer_splits_merge_bitwise_identical(
        genes in 2usize..6,
        b in 1u64..40,
        participants in 1usize..7,
        span in 1u64..9,
        seed in 0u64..1000,
    ) {
        for method in TestMethod::ALL {
            for side in [Side::Abs, Side::Upper, Side::Lower] {
                check_split(method, side, genes, b, participants, span, seed)?;
            }
        }
    }

    /// Rosters larger than B are tolerated by `span_plan` (surplus idle
    /// peers), but `chunk_for_rank` — the strict SPMD split — must reject
    /// them as a resource-allocation error.
    #[test]
    fn surplus_ranks_rejected_surplus_peers_idle(
        b in 1u64..20,
        extra in 1u64..10,
    ) {
        let size = b + extra;
        match chunk_for_rank(b, size, 0) {
            Err(CoreError::RanksExceedPermutations { b: eb, ranks }) => {
                prop_assert_eq!(eb, b);
                prop_assert_eq!(ranks, size);
            }
            other => prop_assert!(false, "expected RanksExceedPermutations, got {:?}", other),
        }
        let plan = span_plan(b, size as usize).unwrap();
        prop_assert_eq!(plan.len(), size as usize);
        let active: u64 = plan.iter().map(|&(_, t)| t).sum();
        prop_assert_eq!(active, b, "active spans still cover 0..B");
        for &(s, t) in plan.iter().skip(b as usize) {
            prop_assert_eq!((s, t), (b, 0), "surplus peers are explicitly idle");
        }
    }

    /// `slice_spans` re-tiles a participant's range exactly, whatever the
    /// span size — uneven last spans included.
    #[test]
    fn slice_spans_tiles_exactly(
        start in 0u64..1000,
        take in 0u64..500,
        span in 1u64..64,
    ) {
        let spans = slice_spans(start, take, span);
        let mut cursor = start;
        for &(s, t) in &spans {
            prop_assert_eq!(s, cursor);
            prop_assert!(t >= 1 && t <= span);
            cursor += t;
        }
        prop_assert_eq!(cursor, start + take);
        // Every span but the last is full-size.
        for &(_, t) in spans.iter().rev().skip(1) {
            prop_assert_eq!(t, span);
        }
    }
}

/// The same SPMD body over both communicator backends: in-process channels
/// (`Universe`) and real localhost TCP (`TcpFleet`) produce results
/// bitwise-identical to serial for every statistic and sidedness.
#[test]
fn both_comm_backends_bitwise_identical_to_serial() {
    for method in TestMethod::ALL {
        for side in [Side::Abs, Side::Upper, Side::Lower] {
            let classlabel = labels_for(method);
            let matrix = synth_matrix(24, classlabel.len(), 5_000 + method as u64);
            let opts = PmaxtOptions {
                test: method,
                side,
                b: 120,
                seed: 31,
                ..PmaxtOptions::default()
            };
            let serial = mt_maxt(&matrix, &classlabel, &opts).unwrap();
            let input = Arc::new((matrix, classlabel, opts));

            let in_proc = {
                let input = Arc::clone(&input);
                mpi_sim::Universe::run(3, move |comm| pmaxt_rank(comm, Some(&input)))
                    .unwrap()
                    .into_iter()
                    .next()
                    .flatten()
                    .expect("master rank produces the result")
                    .0
            };
            assert_eq!(
                in_proc, serial,
                "{method:?}/{side:?}: in-process backend must match serial"
            );

            let over_tcp = {
                let input = Arc::clone(&input);
                let fleet = mpi_sim::TcpFleet::localhost(3).unwrap();
                fleet
                    .run(move |comm| pmaxt_rank(comm, Some(&input)))
                    .unwrap()
                    .into_iter()
                    .next()
                    .flatten()
                    .expect("master rank produces the result")
                    .0
            };
            assert_eq!(
                over_tcp, serial,
                "{method:?}/{side:?}: TCP backend must match serial"
            );
        }
    }
}
