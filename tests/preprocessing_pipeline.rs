//! Integration: the realistic pre-processing chain — batch-effect injection,
//! quantile normalization, expression filtering — feeding the permutation
//! test, with recovery of the planted signal verified end to end.

use microarray::normalize::{apply_batch_shifts, quantile_normalize};
use microarray::prelude::*;
use sprint_core::prelude::*;

#[test]
fn batch_effects_are_neutralized_before_testing() {
    // Planted two-class signal...
    let ds = SynthConfig::two_class(400, 10, 10)
        .diff_fraction(0.05)
        .effect_size(2.5)
        .seed(61)
        .generate();
    // ...contaminated by a batch effect aligned with the classes (the
    // dangerous case: a scanner change between conditions).
    let mut contaminated = ds.matrix.clone();
    let batch_of: Vec<usize> = (0..20).map(|c| usize::from(c >= 10)).collect();
    apply_batch_shifts(&mut contaminated, &batch_of, &[0.0, 2.0]);

    let opts = PmaxtOptions::default().permutations(1_000);

    // Without normalization nearly EVERY gene separates the classes (the
    // batch shift is signal to the t-test).
    let raw_result = mt_maxt(&contaminated, &ds.labels, &opts).unwrap();
    let raw_hits = raw_result.significant_at(0.05).len();
    assert!(
        raw_hits > 100,
        "batch effect should flood the test with hits, got {raw_hits}"
    );

    // With quantile normalization the batch shift disappears and mostly the
    // planted genes remain.
    let mut normalized = contaminated.clone();
    quantile_normalize(&mut normalized);
    let norm_result = mt_maxt(&normalized, &ds.labels, &opts).unwrap();
    let hits = norm_result.significant_at(0.05);
    let true_hits = hits.iter().filter(|&&g| ds.truth[g]).count();
    assert!(
        hits.len() < 60,
        "normalization should collapse the false positives, got {}",
        hits.len()
    );
    assert!(
        true_hits >= 10,
        "planted genes should survive normalization, got {true_hits}/20"
    );
}

#[test]
fn full_chain_normalize_filter_test() {
    let ds = SynthConfig::two_class(500, 8, 8)
        .diff_fraction(0.06)
        .effect_size(3.0)
        .na_rate(0.01)
        .seed(62)
        .generate();
    let mut matrix = ds.matrix.clone();
    quantile_normalize(&mut matrix);
    let filtered = filter_non_expressed(&matrix, 5.0, 0.001);
    assert!(filtered.matrix.rows() > 300, "most genes survive");
    let result = mt_maxt(
        &filtered.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(500),
    )
    .unwrap();
    // Top genes (filtered indices) map back to planted originals.
    let top_planted = result
        .by_significance()
        .take(15)
        .filter(|row| ds.truth[filtered.kept[row.index]])
        .count();
    assert!(top_planted >= 11, "top-15 planted count {top_planted}");
}

#[test]
fn normalization_commutes_with_parallel_testing() {
    // Sanity: the parallel path sees the same normalized matrix.
    let ds = SynthConfig::two_class(60, 6, 6).seed(63).generate();
    let mut matrix = ds.matrix.clone();
    quantile_normalize(&mut matrix);
    let opts = PmaxtOptions::default().permutations(80);
    let serial = mt_maxt(&matrix, &ds.labels, &opts).unwrap();
    let par = pmaxt(&matrix, &ds.labels, &opts, 3).unwrap();
    assert_eq!(par.result, serial);
}

#[test]
#[ignore = "exon-array scale: ~170 MB matrix, slow on small machines"]
fn exon_array_scale_smoke() {
    // The paper's §5: Affymetrix Exon Arrays have ≥ ~280k features. Generate
    // at that scale and run a tiny permutation count end to end.
    let ds = microarray::datasets::exon_array();
    assert_eq!(ds.matrix.rows(), 280_000);
    let opts = PmaxtOptions::default().permutations(3);
    let result = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    assert_eq!(result.b_used, 3);
    assert_eq!(result.genes(), 280_000);
}
