//! Property-based tests (proptest) over the core invariants of the
//! permutation test and its parallel distribution.

use proptest::prelude::*;

use sprint_core::prelude::*;

/// Strategy: a small random two-class dataset plus run options.
fn dataset_strategy() -> impl Strategy<
    Value = (
        usize,    // genes
        usize,    // n0
        usize,    // n1
        Vec<f64>, // data
        u64,      // B
        u64,      // seed
    ),
> {
    (2usize..8, 2usize..5, 2usize..5, 2u64..40, 0u64..1000).prop_flat_map(
        |(genes, n0, n1, b, seed)| {
            let cells = genes * (n0 + n1);
            (
                Just(genes),
                Just(n0),
                Just(n1),
                proptest::collection::vec(-50.0f64..50.0, cells),
                Just(b),
                Just(seed),
            )
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run(
    genes: usize,
    n0: usize,
    n1: usize,
    data: Vec<f64>,
    b: u64,
    seed: u64,
    side: Side,
    sampling: SamplingMode,
) -> (Matrix, Vec<u8>, PmaxtOptions, MaxTResult) {
    let cols = n0 + n1;
    let matrix = Matrix::from_vec(genes, cols, data).unwrap();
    let mut labels = vec![0u8; n0];
    labels.extend(vec![1u8; n1]);
    let opts = PmaxtOptions {
        side,
        sampling,
        b,
        seed,
        ..PmaxtOptions::default()
    };
    let result = mt_maxt(&matrix, &labels, &opts).unwrap();
    (matrix, labels, opts, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn p_values_live_in_unit_interval_with_floor(
        (genes, n0, n1, data, b, seed) in dataset_strategy()
    ) {
        let (_, _, _, result) = run(
            genes, n0, n1, data, b, seed, Side::Abs, SamplingMode::FixedSeedOnTheFly,
        );
        let floor = 1.0 / result.b_used as f64;
        for g in 0..genes {
            let (raw, adj) = (result.rawp[g], result.adjp[g]);
            if raw.is_nan() {
                prop_assert!(adj.is_nan(), "raw NaN implies adj NaN");
                continue;
            }
            prop_assert!(raw >= floor - 1e-12 && raw <= 1.0 + 1e-12, "raw {raw}");
            prop_assert!(adj >= floor - 1e-12 && adj <= 1.0 + 1e-12, "adj {adj}");
            prop_assert!(adj >= raw - 1e-12, "adj {adj} < raw {raw}");
        }
    }

    #[test]
    fn adjusted_p_monotone_along_significance_order(
        (genes, n0, n1, data, b, seed) in dataset_strategy()
    ) {
        let (_, _, _, result) = run(
            genes, n0, n1, data, b, seed, Side::Abs, SamplingMode::FixedSeedOnTheFly,
        );
        let rows: Vec<_> = result.by_significance().collect();
        for w in rows.windows(2) {
            if w[0].adjp.is_nan() || w[1].adjp.is_nan() {
                continue;
            }
            prop_assert!(w[1].adjp >= w[0].adjp - 1e-12);
        }
    }

    #[test]
    fn parallel_equals_serial_everywhere(
        (genes, n0, n1, data, b, seed) in dataset_strategy(),
        ranks in 1usize..7,
        stored in any::<bool>(),
    ) {
        let sampling = if stored { SamplingMode::Stored } else { SamplingMode::FixedSeedOnTheFly };
        let (matrix, labels, opts, serial) = run(
            genes, n0, n1, data, b, seed, Side::Abs, sampling,
        );
        let par = pmaxt(&matrix, &labels, &opts, ranks).unwrap();
        prop_assert_eq!(par.result, serial);
    }

    #[test]
    fn sides_relate_consistently(
        (genes, n0, n1, data, b, seed) in dataset_strategy()
    ) {
        // For every gene the two-sided test is at most as significant as the
        // better of the two one-sided tests at the same permutations (the
        // |t| distribution dominates each tail's).
        let (_, _, _, abs_r) = run(
            genes, n0, n1, data.clone(), b, seed, Side::Abs, SamplingMode::FixedSeedOnTheFly,
        );
        let (_, _, _, up_r) = run(
            genes, n0, n1, data.clone(), b, seed, Side::Upper, SamplingMode::FixedSeedOnTheFly,
        );
        let (_, _, _, lo_r) = run(
            genes, n0, n1, data, b, seed, Side::Lower, SamplingMode::FixedSeedOnTheFly,
        );
        for g in 0..genes {
            let (a, u, l) = (abs_r.rawp[g], up_r.rawp[g], lo_r.rawp[g]);
            if a.is_nan() || u.is_nan() || l.is_nan() {
                continue;
            }
            prop_assert!(
                a >= u.min(l) - 1e-12,
                "gene {g}: abs {a} < min(upper {u}, lower {l})"
            );
        }
    }

    #[test]
    fn observed_statistics_independent_of_b_and_seed(
        (genes, n0, n1, data, b, seed) in dataset_strategy()
    ) {
        let (_, _, _, r1) = run(
            genes, n0, n1, data.clone(), b, seed, Side::Abs, SamplingMode::FixedSeedOnTheFly,
        );
        let (_, _, _, r2) = run(
            genes, n0, n1, data, b.max(2) * 2, seed + 1, Side::Abs, SamplingMode::Stored,
        );
        for g in 0..genes {
            let (a, b2) = (r1.teststat[g], r2.teststat[g]);
            prop_assert!(
                (a.is_nan() && b2.is_nan()) || a == b2,
                "gene {g}: {a} vs {b2}"
            );
        }
    }

    #[test]
    fn column_permutation_with_labels_is_invariant(
        (genes, n0, n1, data, b, seed) in dataset_strategy()
    ) {
        // Permuting columns together with their labels leaves every
        // statistic unchanged (two-sample statistics only see groups).
        let cols = n0 + n1;
        let (matrix, labels, opts, base) = run(
            genes, n0, n1, data, b, seed, Side::Abs, SamplingMode::FixedSeedOnTheFly,
        );
        // Rotate columns by 1.
        let mut rotated = Vec::with_capacity(genes * cols);
        for g in 0..genes {
            let row = matrix.row(g);
            for c in 0..cols {
                rotated.push(row[(c + 1) % cols]);
            }
        }
        let mut rot_labels = labels.clone();
        rot_labels.rotate_left(1);
        let rot_matrix = Matrix::from_vec(genes, cols, rotated).unwrap();
        let rotated_result = mt_maxt(&rot_matrix, &rot_labels, &opts).unwrap();
        for g in 0..genes {
            let (a, b2) = (base.teststat[g], rotated_result.teststat[g]);
            prop_assert!(
                (a.is_nan() && b2.is_nan()) || (a - b2).abs() < 1e-9,
                "gene {g}: {a} vs {b2}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_skip_equals_iterate_for_random_configs(
        n0 in 2usize..6,
        n1 in 2usize..6,
        b in 1u64..60,
        seed in 0u64..500,
        start in 0u64..60,
        stored in any::<bool>(),
    ) {
        use sprint_core::labels::ClassLabels;
        use sprint_core::perm::build_generator;
        let mut labels = vec![0u8; n0];
        labels.extend(vec![1u8; n1]);
        let class = ClassLabels::new(labels, TestMethod::T).unwrap();
        let opts = PmaxtOptions {
            b,
            seed,
            sampling: if stored { SamplingMode::Stored } else { SamplingMode::FixedSeedOnTheFly },
            ..PmaxtOptions::default()
        };
        let cols = n0 + n1;
        // Reference: iterate everything.
        let mut reference = Vec::new();
        let mut gen = build_generator(&class, &opts, b).unwrap();
        let mut buf = vec![0u8; cols];
        while gen.next_into(&mut buf) {
            reference.push(buf.clone());
        }
        // Skip to `start` and compare the tail.
        let mut gen2 = build_generator(&class, &opts, b).unwrap();
        gen2.skip(start);
        let mut tail = Vec::new();
        while gen2.next_into(&mut buf) {
            tail.push(buf.clone());
        }
        let start = (start as usize).min(reference.len());
        prop_assert_eq!(&tail[..], &reference[start..]);
    }
}
