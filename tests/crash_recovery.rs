//! Crash-point recovery matrix over the real binary: arm `SPRINT_CRASH` so
//! `pmaxt serve` aborts at each registered crash point, let it die with a job
//! in flight, restart a clean server over the same cache directory, and
//! assert the durability contract — no acked job is lost, accounting never
//! duplicates, and the recovered table is bitwise-identical to an
//! uninterrupted serial run. A second matrix drills the widest crash window
//! (`manager.finish`, after compute but before the terminal journal record)
//! across all eight statistics.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use microarray::io::write_dataset;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::options::{PmaxtOptions, TestMethod};
use sprint_jobd::client::{expect_ok, request_retried, RetryPolicy};
use sprint_jobd::json::Json;
use sprint_jobd::{protocol, CRASH_POINTS};

const WAIT: Duration = Duration::from_secs(120);

fn synth_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut v = Vec::with_capacity(rows * cols);
    for g in 0..rows {
        let shift = if g % 5 == 0 { 1.2 } else { 0.0 };
        for c in 0..cols {
            let bump = if c >= cols / 2 { shift } else { 0.0 };
            v.push(next() * 4.0 - 2.0 + bump);
        }
    }
    Matrix::from_vec(rows, cols, v).unwrap()
}

/// A label vector each statistic accepts: two groups for the t-family,
/// three groups for F, pair/block structure for the paired tests, and a
/// graded covariate for correlation.
fn labels_for(test: TestMethod) -> Vec<u8> {
    match test {
        TestMethod::F => vec![0, 0, 1, 1, 2, 2, 2, 2],
        TestMethod::PairT => vec![0, 1, 0, 1, 1, 0, 0, 1],
        TestMethod::BlockF => vec![0, 1, 1, 0, 0, 1, 1, 0],
        TestMethod::Corr => vec![0, 1, 2, 3, 0, 1, 2, 3],
        _ => vec![0, 0, 0, 0, 1, 1, 1, 1],
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmaxt-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the real `pmaxt serve` over a unix socket with full durability,
/// optionally armed to abort at a crash point. Every SPRINT_* variable is
/// cleared first so an outer CI environment cannot skew the run.
fn spawn_serve(sock: &Path, cache: &Path, crash: Option<&str>) -> Child {
    let addr = format!("unix:{}", sock.display());
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pmaxt"));
    cmd.args([
        "serve",
        &addr,
        "--workers",
        "2",
        "--span",
        "16",
        "--cache",
        cache.to_str().unwrap(),
        "--durability",
        "full",
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    for var in [
        "SPRINT_CRASH",
        "SPRINT_FAULTS",
        "SPRINT_FAULTS_SEED",
        "SPRINT_KERNEL",
        "SPRINT_MODE",
        "SPRINT_PRECISION",
        "SPRINT_THREADS",
        "SPRINT_BATCH",
    ] {
        cmd.env_remove(var);
    }
    if let Some(spec) = crash {
        cmd.env("SPRINT_CRASH", spec);
    }
    cmd.spawn().expect("spawn pmaxt serve")
}

/// Wait until the socket accepts connections. Returns false if the server
/// died first — legal for crash points that fire during startup recovery
/// (the empty-journal compaction already exercises the storage points).
fn wait_socket(sock: &Path, child: &mut Child) -> bool {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if std::os::unix::net::UnixStream::connect(sock).is_ok() {
            return true;
        }
        if child.try_wait().expect("try_wait").is_some() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    panic!("server never came up at {}", sock.display());
}

/// Wait for the armed server to hit its crash point and abort.
fn wait_death(child: &mut Child, point: &str) {
    let deadline = Instant::now() + Duration::from_secs(90);
    while Instant::now() < deadline {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("server survived its crash point {point}");
}

/// One kill-and-recover round trip: submit against a server armed to abort
/// at `point`, wait for the abort, restart clean over the same cache, and
/// require the resubmitted job to come back bitwise-identical to the serial
/// reference. Drain-shutdown at the end proves the recovered journal is
/// still compactable.
fn drill(point: &str, test: TestMethod, tag: &str) {
    let dir = tmpdir(tag);
    let sock = dir.join("jobd.sock");
    let cache = dir.join("cache");
    let dataset = dir.join("data.tsv");
    let labels = labels_for(test);
    let data = synth_matrix(40, labels.len(), 7000 + test as u64);
    write_dataset(&dataset, &data, &labels).unwrap();
    let opts = PmaxtOptions::default()
        .test(test)
        .permutations(4000)
        .seed(9)
        .threads(1);
    let addr = format!("unix:{}", sock.display());
    let spec = format!("{point}:1");

    // Phase 1: the armed server. The submission may be acked, refused, or
    // cut mid-flight depending on where the point sits relative to the
    // journal append — all are legal; the contract is judged after restart.
    let mut armed = spawn_serve(&sock, &cache, Some(&spec));
    if wait_socket(&sock, &mut armed) {
        let probe = RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            max: Duration::from_millis(100),
            seed: 7,
        };
        let _ = request_retried(
            &addr,
            &protocol::submit_request(dataset.to_str().unwrap(), &opts),
            &probe,
            Some(Duration::from_secs(30)),
        );
    }
    wait_death(&mut armed, point);
    let _ = std::fs::remove_file(&sock);

    // Phase 2: clean restart over the battered cache — replay, quarantine
    // any torn tail, re-enqueue what folds as pending — then resubmit. The
    // resubmission either dedups onto the recovered job or starts fresh;
    // either way the table must match the uninterrupted reference exactly.
    let mut clean = spawn_serve(&sock, &cache, None);
    assert!(
        wait_socket(&sock, &mut clean),
        "{point}: clean server died during recovery"
    );
    let policy = RetryPolicy {
        attempts: 20,
        base: Duration::from_millis(10),
        max: Duration::from_millis(200),
        seed: 13,
    };
    let retried = |req: &Json| -> Json {
        let resp =
            request_retried(&addr, req, &policy, Some(WAIT)).expect("request after recovery");
        expect_ok(resp).expect("wire error after recovery")
    };
    let resp = retried(&protocol::submit_request(dataset.to_str().unwrap(), &opts));
    let job = resp.get("job").and_then(Json::as_u64).expect("job id");
    let resp = retried(&protocol::result_request(job, true));
    let served = protocol::result_from_json(&resp).unwrap();
    let direct = mt_maxt(&data, &labels, &opts).unwrap();
    assert_eq!(
        served,
        direct,
        "{point}/{}: post-crash result must be bitwise-identical",
        test.as_str()
    );

    // No duplicate accounting: a second identical submission must dedup
    // onto the job that just finished, never fork a twin.
    let resp = retried(&protocol::submit_request(dataset.to_str().unwrap(), &opts));
    assert_eq!(
        resp.get("deduped").and_then(Json::as_bool),
        Some(true),
        "{point}: recovered server must dedup the resubmission"
    );

    // Graceful exit: drain flushes and compacts the journal before the ack.
    let _ = request_retried(
        &addr,
        &protocol::shutdown_request(true),
        &policy,
        Some(WAIT),
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if clean.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if clean.try_wait().expect("try_wait").is_none() {
        let _ = clean.kill();
        let _ = clean.wait();
        panic!("{point}: clean server ignored drain shutdown");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill the server at every registered crash point and recover.
#[test]
fn every_crash_point_recovers_with_identical_results() {
    for point in CRASH_POINTS {
        drill(
            point,
            TestMethod::T,
            &format!("pt-{}", point.replace('.', "-")),
        );
    }
}

/// Drill the widest crash window — compute finished, terminal record not
/// yet journaled — across all eight statistics.
#[test]
fn widest_crash_window_recovers_for_all_eight_statistics() {
    for test in TestMethod::ALL {
        drill(
            "manager.finish",
            test,
            &format!("stat-{}", test.as_str().replace('.', "-")),
        );
    }
}
