//! Cross-crate integration: the headline correctness claim of the paper —
//! `pmaxT` reproduces `mt.maxT` exactly — checked on realistic synthetic
//! microarray data over the full option grid and many rank counts,
//! including the Figure 2 distribution scheme at awkward chunk boundaries.

use microarray::design::LabelDesign;
use microarray::prelude::*;
use sprint_core::prelude::*;

fn dataset_for(method: TestMethod, genes: usize, seed: u64) -> (SyntheticDataset, TestMethod) {
    let design = match method {
        TestMethod::F => LabelDesign::MultiClass {
            counts: vec![4, 3, 5],
        },
        TestMethod::PairT => LabelDesign::Paired { pairs: 6 },
        TestMethod::BlockF => LabelDesign::Block {
            blocks: 4,
            treatments: 3,
        },
        _ => LabelDesign::TwoClass { n0: 6, n1: 6 },
    };
    let ds = SynthConfig::new(genes, design)
        .diff_fraction(0.1)
        .effect_size(1.8)
        .na_rate(0.02)
        .seed(seed)
        .generate();
    (ds, method)
}

#[test]
fn full_option_grid_with_na_data() {
    for method in TestMethod::ALL {
        let (ds, method) = dataset_for(method, 40, 1_000 + method as u64);
        for side in [Side::Abs, Side::Upper, Side::Lower] {
            for sampling in [SamplingMode::FixedSeedOnTheFly, SamplingMode::Stored] {
                let opts = PmaxtOptions {
                    test: method,
                    side,
                    sampling,
                    b: 41, // awkward: 40 non-identity permutations over 3 ranks
                    ..PmaxtOptions::default()
                };
                let serial = mt_maxt(&ds.matrix, &ds.labels, &opts)
                    .unwrap_or_else(|e| panic!("{method:?}/{side:?}/{sampling:?}: {e}"));
                let par = pmaxt(&ds.matrix, &ds.labels, &opts, 3).unwrap();
                assert_eq!(
                    par.result, serial,
                    "mismatch for {method:?}/{side:?}/{sampling:?}"
                );
            }
        }
    }
}

#[test]
fn complete_enumeration_all_families() {
    for method in TestMethod::ALL {
        let (ds, method) = dataset_for(method, 25, 2_000 + method as u64);
        let opts = PmaxtOptions::default().test(method).permutations(0);
        let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
        assert!(serial.b_used > 1);
        for ranks in [2usize, 5] {
            let par = pmaxt(&ds.matrix, &ds.labels, &opts, ranks).unwrap();
            assert_eq!(par.result, serial, "{method:?} ranks={ranks}");
        }
    }
}

#[test]
fn every_rank_count_up_to_twelve() {
    let ds = SynthConfig::two_class(60, 8, 8)
        .diff_fraction(0.1)
        .seed(3_000)
        .generate();
    let opts = PmaxtOptions::default().permutations(100);
    let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    for ranks in 1..=12usize {
        let par = pmaxt(&ds.matrix, &ds.labels, &opts, ranks).unwrap();
        assert_eq!(par.result, serial, "ranks={ranks}");
    }
}

#[test]
fn awkward_b_values_and_rank_combinations() {
    let ds = SynthConfig::two_class(20, 5, 5).seed(4_000).generate();
    // B values chosen to stress the chunking: primes, B < ranks, B == ranks.
    for b in [1u64, 2, 3, 7, 11, 13] {
        let opts = PmaxtOptions::default().permutations(b);
        let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
        for ranks in [2usize, 4, 7, 9] {
            let par = pmaxt(&ds.matrix, &ds.labels, &opts, ranks).unwrap();
            assert_eq!(par.result, serial, "b={b} ranks={ranks}");
        }
    }
}

#[test]
fn hybrid_thread_geometries_through_pmaxt_match_serial() {
    // The hybrid SPMD x threads mode: every rank fans out over an in-rank
    // thread pool. Any (ranks, threads, batch) geometry must reproduce the
    // serial answer exactly.
    let ds = SynthConfig::two_class(50, 7, 7)
        .diff_fraction(0.1)
        .na_rate(0.03)
        .seed(7_000)
        .generate();
    let serial = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(90),
    )
    .unwrap();
    for (ranks, threads, batch) in [(1, 4, 1), (2, 2, 8), (3, 8, 16), (4, 3, 64), (2, 1, 7)] {
        let opts = PmaxtOptions::default()
            .permutations(90)
            .threads(threads)
            .batch(batch);
        let par = pmaxt(&ds.matrix, &ds.labels, &opts, ranks).unwrap();
        assert_eq!(
            par.result, serial,
            "ranks={ranks} threads={threads} batch={batch}"
        );
    }
}

#[test]
fn nonpara_mode_parallel_agreement() {
    let ds = SynthConfig::two_class(30, 6, 6)
        .na_rate(0.05)
        .seed(5_000)
        .generate();
    let opts = PmaxtOptions::default().permutations(60).nonpara(true);
    let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    let par = pmaxt(&ds.matrix, &ds.labels, &opts, 4).unwrap();
    assert_eq!(par.result, serial);
}

#[test]
fn na_code_canonicalization_in_parallel() {
    // Use an explicit NA code instead of NaN cells.
    let mut ds = SynthConfig::two_class(20, 5, 5).seed(6_000).generate();
    let mut v = ds.matrix.as_slice().to_vec();
    v[7] = -999.0;
    v[33] = -999.0;
    ds.matrix = Matrix::from_vec(20, 10, v).unwrap();
    let opts = PmaxtOptions::default().permutations(50).na_code(-999.0);
    let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    let par = pmaxt(&ds.matrix, &ds.labels, &opts, 3).unwrap();
    assert_eq!(par.result, serial);
}
