//! End-to-end integration through every layer: synthetic data → TSV IO →
//! column-major ingestion (in-place transpose) → SPRINT framework dispatch →
//! parallel pmaxT → checkpointed rerun — all agreeing with the serial
//! reference.

use microarray::io::{read_dataset, write_dataset};
use microarray::prelude::*;
use sprint::checkpoint::run_with_checkpoints;
use sprint::driver::{call_pmaxt, standard_registry};
use sprint::framework::Sprint;
use sprint::transpose::{matrix_from_column_major, transpose_copy};
use sprint_core::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sprint-e2e-{}-{name}", std::process::id()))
}

#[test]
fn pipeline_from_disk_through_framework() {
    // 1. Generate and persist a dataset.
    let ds = SynthConfig::two_class(80, 7, 7)
        .diff_fraction(0.1)
        .effect_size(2.5)
        .na_rate(0.03)
        .seed(777)
        .generate();
    let path = tmp("pipeline.tsv");
    write_dataset(&path, &ds.matrix, &ds.labels).unwrap();

    // 2. Load it back (a different "session").
    let (matrix, labels) = read_dataset(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(matrix.rows(), 80);

    // 3. Serial reference.
    let opts = PmaxtOptions::default().permutations(200);
    let serial = mt_maxt(&matrix, &labels, &opts).unwrap();

    // 4. Through the SPRINT framework on 3 ranks.
    let (m2, l2, o2) = (matrix.clone(), labels.clone(), opts.clone());
    let framework_result = Sprint::new(standard_registry())
        .run(3, move |master| call_pmaxt(master, m2, &l2, &o2))
        .unwrap();
    assert_eq!(framework_result, serial);

    // 5. Direct parallel driver agrees too.
    let par = pmaxt(&matrix, &labels, &opts, 5).unwrap();
    assert_eq!(par.result, serial);
}

#[test]
fn column_major_ingestion_matches_row_major() {
    let ds = SynthConfig::two_class(50, 6, 6).seed(88).generate();
    // Simulate R handing us the matrix column-major.
    let cm = transpose_copy(ds.matrix.as_slice(), ds.matrix.rows(), ds.matrix.cols());
    let rebuilt = matrix_from_column_major(ds.matrix.rows(), ds.matrix.cols(), cm).unwrap();
    assert_eq!(rebuilt, ds.matrix);
    // And the analysis is identical either way.
    let opts = PmaxtOptions::default().permutations(100);
    let a = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    let b = mt_maxt(&rebuilt, &ds.labels, &opts).unwrap();
    assert_eq!(a, b);
}

#[test]
fn checkpointed_run_agrees_with_framework_run() {
    let ds = SynthConfig::two_class(40, 6, 6).seed(99).generate();
    let opts = PmaxtOptions::default().permutations(120);
    let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();

    // Interrupted + resumed checkpoint run.
    let path = tmp("agree.ckpt");
    let (p1, _) = run_with_checkpoints(&ds.matrix, &ds.labels, &opts, &path, 25, Some(60)).unwrap();
    assert!(p1.is_none());
    let (p2, info) = run_with_checkpoints(&ds.matrix, &ds.labels, &opts, &path, 25, None).unwrap();
    assert_eq!(info.resumed_from, 60);
    assert_eq!(p2.unwrap(), serial);

    // Framework run.
    let (m, l, o) = (ds.matrix.clone(), ds.labels.clone(), opts.clone());
    let fw = Sprint::new(standard_registry())
        .run(2, move |master| call_pmaxt(master, m, &l, &o))
        .unwrap();
    assert_eq!(fw, serial);
}

#[test]
fn filtering_then_testing_keeps_index_mapping() {
    // The mt.maxT "index" column must refer to rows of the *filtered* matrix;
    // verify a full workflow keeps the bookkeeping straight.
    let ds = SynthConfig::two_class(300, 8, 8)
        .diff_fraction(0.1)
        .effect_size(3.0)
        .seed(1234)
        .generate();
    let filtered = filter_non_expressed(&ds.matrix, 6.5, 0.0);
    let result = mt_maxt(
        &filtered.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(500),
    )
    .unwrap();
    // Map filtered indices back to original gene ids and check the top genes
    // are mostly planted ones.
    let top: Vec<usize> = result
        .by_significance()
        .take(10)
        .map(|row| filtered.kept[row.index])
        .collect();
    let planted = top.iter().filter(|&&orig| ds.truth[orig]).count();
    assert!(planted >= 7, "top-10 contains only {planted} planted genes");
}

#[test]
fn ten_rank_framework_stress() {
    let ds = SynthConfig::two_class(30, 5, 5).seed(4321).generate();
    let opts = PmaxtOptions::default().permutations(97);
    let serial = mt_maxt(&ds.matrix, &ds.labels, &opts).unwrap();
    let (m, l, o) = (ds.matrix.clone(), ds.labels.clone(), opts.clone());
    let fw = Sprint::new(standard_registry())
        .run(10, move |master| call_pmaxt(master, m, &l, &o))
        .unwrap();
    assert_eq!(fw, serial);
}
