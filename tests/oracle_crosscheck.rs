//! Oracle cross-check: an independent, textbook re-implementation of the
//! Westfall–Young step-down maxT procedure (Ge, Dudoit & Speed 2003,
//! Box 2) written directly in this test — no shared code with the kernel
//! beyond the statistic functions — compared against `mt_maxt` on complete
//! enumerations, where both are exact.

use sprint_core::labels::ClassLabels;
use sprint_core::matrix::Matrix;
use sprint_core::maxt::serial::mt_maxt;
use sprint_core::maxt::EPSILON;
use sprint_core::options::{KernelChoice, PmaxtOptions, TestMethod};
use sprint_core::perm::iter::Permutations;
use sprint_core::perm::{build_generator, resolve_permutation_count};
use sprint_core::side::Side;
use sprint_core::stats::{prepare_matrix, StatComputer};

/// Textbook step-down maxT, straight from the definition:
/// 1. collect the full genes × B score matrix;
/// 2. order genes by decreasing observed score;
/// 3. `adjp(s_i) = (1/B) Σ_b 1[ max_{j ≥ i} z_{s_j, b} ≥ z_{s_i, obs} ]`;
/// 4. enforce monotonicity.
fn oracle_maxt(data: &Matrix, classlabel: &[u8], opts: &PmaxtOptions) -> (Vec<f64>, Vec<f64>) {
    let labels = ClassLabels::new(classlabel.to_vec(), opts.test).unwrap();
    let b = resolve_permutation_count(&labels, opts).unwrap();
    let prepared = prepare_matrix(data, opts.test, opts.nonpara);
    let computer = StatComputer::new(opts.test, &labels);
    let genes = data.rows();

    // Full score matrix, the naive way.
    let perms: Vec<Vec<u8>> =
        Permutations::new(build_generator(&labels, opts, b).unwrap(), data.cols()).collect();
    assert_eq!(perms.len(), b as usize);
    let score = |g: usize, arrangement: &[u8]| -> f64 {
        opts.side
            .score(computer.compute(prepared.row(g), arrangement))
    };
    let z: Vec<Vec<f64>> = (0..genes)
        .map(|g| perms.iter().map(|p| score(g, p)).collect())
        .collect();

    // Raw p-values directly from the definition.
    let rawp: Vec<f64> = (0..genes)
        .map(|g| {
            let obs = z[g][0];
            if obs == f64::NEG_INFINITY {
                return f64::NAN;
            }
            let count = z[g].iter().filter(|&&v| v >= obs - EPSILON).count();
            count as f64 / b as f64
        })
        .collect();

    // Order genes by decreasing observed score (stable).
    let mut order: Vec<usize> = (0..genes).collect();
    order.sort_by(|&a, &c| z[c][0].partial_cmp(&z[a][0]).unwrap());

    // adjp(s_i) from the definition, with the inner max recomputed from
    // scratch for every (i, b) — quadratic and slow, deliberately different
    // from the kernel's running-maximum trick.
    let mut adj_ordered = vec![0.0f64; genes];
    for (i, slot) in adj_ordered.iter_mut().enumerate() {
        let obs = z[order[i]][0];
        let count = (0..b as usize)
            .filter(|&bi| {
                let tail_max = order[i..]
                    .iter()
                    .map(|&g| z[g][bi])
                    .fold(f64::NEG_INFINITY, f64::max);
                tail_max >= obs - EPSILON
            })
            .count();
        *slot = count as f64 / b as f64;
    }
    for i in 1..genes {
        adj_ordered[i] = adj_ordered[i].max(adj_ordered[i - 1]);
    }
    let mut adjp = vec![f64::NAN; genes];
    for (i, &g) in order.iter().enumerate() {
        if z[g][0] > f64::NEG_INFINITY {
            adjp[g] = adj_ordered[i];
        }
    }
    (rawp, adjp)
}

fn compare_against_oracle(data: &Matrix, labels: &[u8], opts: &PmaxtOptions) {
    let (oracle_raw, oracle_adj) = oracle_maxt(data, labels, opts);
    let kernel = mt_maxt(data, labels, opts).unwrap();
    for g in 0..data.rows() {
        let (kr, or) = (kernel.rawp[g], oracle_raw[g]);
        assert!(
            (kr.is_nan() && or.is_nan()) || (kr - or).abs() < 1e-12,
            "rawp gene {g}: kernel {kr} oracle {or} ({opts:?})"
        );
        let (ka, oa) = (kernel.adjp[g], oracle_adj[g]);
        assert!(
            (ka.is_nan() && oa.is_nan()) || (ka - oa).abs() < 1e-12,
            "adjp gene {g}: kernel {ka} oracle {oa} ({opts:?})"
        );
    }
}

#[test]
fn oracle_agrees_on_complete_two_sample() {
    let data = Matrix::from_vec(
        5,
        6,
        vec![
            1.0, 2.0, 1.5, 9.0, 10.0, 9.5, // strong
            5.0, 4.0, 6.0, 5.5, 4.5, 5.2, // flat
            2.0, 8.0, 3.0, 7.0, 2.5, 7.5, // noisy
            1.0, 1.1, 0.9, 1.2, 0.8, 1.05, // tiny variance
            3.0, 3.0, 3.0, 3.0, 3.0, 3.0, // constant (NaN statistic)
        ],
    )
    .unwrap();
    let labels = vec![0u8, 0, 0, 1, 1, 1];
    for side in [Side::Abs, Side::Upper, Side::Lower] {
        for method in [TestMethod::T, TestMethod::TEqualVar, TestMethod::Wilcoxon] {
            let opts = PmaxtOptions::default()
                .test(method)
                .side(side)
                .permutations(0);
            compare_against_oracle(&data, &labels, &opts);
        }
    }
}

#[test]
fn oracle_agrees_on_complete_paired_and_block() {
    let data = Matrix::from_vec(
        3,
        8,
        vec![
            1.0, 2.0, 3.0, 5.0, 2.0, 4.0, 5.0, 9.0, //
            4.0, 4.2, 3.9, 4.1, 4.3, 4.0, 3.8, 4.2, //
            0.5, 2.5, 1.0, 3.5, 1.5, 2.0, 2.5, 4.5, //
        ],
    )
    .unwrap();
    let paired_labels = vec![0u8, 1, 0, 1, 0, 1, 0, 1];
    let opts = PmaxtOptions::default()
        .test(TestMethod::PairT)
        .permutations(0);
    compare_against_oracle(&data, &paired_labels, &opts); // 2^4 = 16 perms

    let block_labels = vec![0u8, 1, 1, 0, 0, 1, 1, 0];
    let opts = PmaxtOptions::default()
        .test(TestMethod::BlockF)
        .permutations(0);
    compare_against_oracle(&data, &block_labels, &opts); // (2!)^4 = 16 perms
}

#[test]
fn oracle_agrees_on_complete_multiclass_f() {
    let data = Matrix::from_vec(
        3,
        6,
        vec![
            1.0, 2.0, 4.0, 6.0, 5.0, 9.0, //
            3.0, 3.1, 2.9, 3.2, 3.0, 3.1, //
            9.0, 1.0, 5.0, 5.0, 1.0, 9.0, //
        ],
    )
    .unwrap();
    let labels = vec![0u8, 0, 1, 1, 2, 2];
    // 6!/(2!2!2!) = 90 complete arrangements.
    let opts = PmaxtOptions::default().test(TestMethod::F).permutations(0);
    compare_against_oracle(&data, &labels, &opts);
}

#[test]
fn oracle_agrees_with_both_kernels_explicitly() {
    // The oracle computes its score matrix with the scalar `StatComputer`
    // only; running `mt_maxt` once per explicit kernel choice pins the
    // sufficient-statistic fast path against that independent reference to
    // 1e-12, not merely against the scalar path. NA rows force the mixed
    // fast/scalar dispatch inside a single run.
    let data = Matrix::from_vec(
        4,
        6,
        vec![
            1.0,
            2.0,
            1.5,
            9.0,
            10.0,
            9.5, // clean strong
            5.0,
            f64::NAN,
            6.0,
            5.5,
            4.5,
            5.2, // NA → scalar fallback row
            2.0,
            8.0,
            3.0,
            7.0,
            2.5,
            7.5, // clean noisy
            3.0,
            3.0,
            3.0,
            3.0,
            3.0,
            3.0, // constant (NaN statistic)
        ],
    )
    .unwrap();
    let labels = vec![0u8, 0, 0, 1, 1, 1];
    for kernel in [KernelChoice::Scalar, KernelChoice::Fast] {
        for method in [TestMethod::T, TestMethod::TEqualVar, TestMethod::Wilcoxon] {
            for side in [Side::Abs, Side::Upper, Side::Lower] {
                let opts = PmaxtOptions::default()
                    .test(method)
                    .side(side)
                    .kernel(kernel)
                    .permutations(0);
                compare_against_oracle(&data, &labels, &opts);
            }
        }
    }
}

#[test]
fn oracle_agrees_on_random_sampling_too() {
    // Same seed → same permutation stream → identical estimates.
    let data = Matrix::from_vec(
        4,
        8,
        vec![
            1.0, 2.0, 1.5, 2.5, 9.0, 10.0, 9.5, 10.5, //
            5.0, 4.0, 6.0, 5.5, 4.5, 5.2, 5.8, 4.9, //
            2.0, 8.0, 3.0, 7.0, 2.5, 7.5, 3.5, 6.5, //
            1.0, 1.0, 2.0, 1.5, 3.0, 4.0, 2.0, 3.5, //
        ],
    )
    .unwrap();
    let labels = vec![0u8, 0, 0, 0, 1, 1, 1, 1];
    for sampling in ["y", "n"] {
        let opts = PmaxtOptions::default()
            .permutations(64)
            .fixed_seed_sampling(sampling)
            .unwrap();
        compare_against_oracle(&data, &labels, &opts);
    }
}
