//! Statistical validation on synthetic data with known ground truth: the
//! permutation test must (a) recover planted differential genes, (b) produce
//! ~uniform raw p-values on null genes, and (c) control the family-wise
//! error rate through the maxT adjustment.

use microarray::prelude::*;
use sprint_core::prelude::*;

#[test]
fn planted_genes_surface_with_small_adjusted_p() {
    let ds = SynthConfig::two_class(400, 12, 12)
        .diff_fraction(0.05) // 20 planted genes
        .effect_size(3.0) // strong signal
        .seed(11)
        .generate();
    let result = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(2_000),
    )
    .unwrap();
    let hits = result.significant_at(0.05);
    let true_hits = hits.iter().filter(|&&g| ds.truth[g]).count();
    assert!(
        true_hits >= 15,
        "expected most of the 20 planted genes, found {true_hits} (of {} hits)",
        hits.len()
    );
    // With maxT control, false hits should be rare.
    let false_hits = hits.len() - true_hits;
    assert!(false_hits <= 2, "too many false positives: {false_hits}");
}

#[test]
fn null_raw_p_values_are_roughly_uniform() {
    // No planted effects at all: raw p-values should be ~Uniform(0,1].
    let ds = SynthConfig::two_class(500, 10, 10)
        .diff_fraction(0.0)
        .seed(12)
        .generate();
    let result = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(1_000),
    )
    .unwrap();
    let mut ps: Vec<f64> = result
        .rawp
        .iter()
        .copied()
        .filter(|p| !p.is_nan())
        .collect();
    assert!(ps.len() >= 490);
    ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Kolmogorov–Smirnov style bound: sup |F_n(p) − p| small. Gene-level
    // statistics are exchangeable but not independent, so use a generous
    // threshold; gross miscalibration (e.g. doubled or halved p-values)
    // would exceed it by far.
    let n = ps.len() as f64;
    let mut dmax = 0.0f64;
    for (i, &p) in ps.iter().enumerate() {
        let fn_above = (i + 1) as f64 / n;
        dmax = dmax.max((fn_above - p).abs());
    }
    assert!(dmax < 0.12, "KS distance from uniform: {dmax}");
    // Mean should be near 0.5.
    let mean = ps.iter().sum::<f64>() / n;
    assert!((mean - 0.5).abs() < 0.06, "mean raw p {mean}");
}

#[test]
fn maxt_controls_family_wise_error_on_null_data() {
    // Across several independent null datasets, the chance that ANY gene
    // gets adjusted p <= 0.05 should be about 5%. With 12 datasets, seeing
    // more than 4 such events is overwhelming evidence of broken control.
    let mut family_errors = 0;
    for seed in 0..12u64 {
        let ds = SynthConfig::two_class(200, 8, 8)
            .diff_fraction(0.0)
            .seed(100 + seed)
            .generate();
        let result = mt_maxt(
            &ds.matrix,
            &ds.labels,
            &PmaxtOptions::default().permutations(500).seed(seed),
        )
        .unwrap();
        if !result.significant_at(0.05).is_empty() {
            family_errors += 1;
        }
    }
    assert!(
        family_errors <= 4,
        "maxT FWER control broken: {family_errors}/12 null datasets had a hit"
    );
}

#[test]
fn stronger_effects_get_smaller_p_values() {
    // Three planted tiers; their median adjusted p-values must be ordered.
    let base = SynthConfig::two_class(300, 10, 10)
        .diff_fraction(0.0)
        .seed(13)
        .generate();
    let mut v = base.matrix.as_slice().to_vec();
    let cols = 20;
    // Tier A (genes 0..10): effect 3.0, tier B (10..20): 1.5, C: null.
    for g in 0..10 {
        for c in 10..20 {
            v[g * cols + c] += 3.0;
        }
    }
    for g in 10..20 {
        for c in 10..20 {
            v[g * cols + c] += 1.5;
        }
    }
    let data = Matrix::from_vec(300, cols, v).unwrap();
    let result = mt_maxt(
        &data,
        &base.labels,
        &PmaxtOptions::default().permutations(1_000),
    )
    .unwrap();
    let median = |range: std::ops::Range<usize>| {
        let mut ps: Vec<f64> = range.map(|g| result.adjp[g]).collect();
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ps[ps.len() / 2]
    };
    let (a, b, c) = (median(0..10), median(10..20), median(20..300));
    assert!(a <= b, "tier A ({a}) should beat tier B ({b})");
    assert!(b < c, "tier B ({b}) should beat null ({c})");
    assert!(a < 0.05, "strong tier should be significant, got {a}");
}

#[test]
fn wilcoxon_robust_to_heavy_outliers() {
    // Corrupt one sample of a planted gene with a huge outlier: the t-test
    // loses it, the rank-based Wilcoxon keeps it.
    let ds = SynthConfig::two_class(200, 10, 10)
        .diff_fraction(0.05)
        .effect_size(2.5)
        .seed(14)
        .generate();
    let mut v = ds.matrix.as_slice().to_vec();
    let planted: Vec<usize> = (0..200).filter(|&g| ds.truth[g]).collect();
    for &g in &planted {
        v[g * 20] += 1.0e4; // absurd outlier in class 0
    }
    let data = Matrix::from_vec(200, 20, v).unwrap();
    let t_res = mt_maxt(
        &data,
        &ds.labels,
        &PmaxtOptions::default().permutations(800),
    )
    .unwrap();
    let w_res = mt_maxt(
        &data,
        &ds.labels,
        &PmaxtOptions::default()
            .test(TestMethod::Wilcoxon)
            .permutations(800),
    )
    .unwrap();
    // Recovery metric: planted genes among the top-10 of the significance
    // order (the adjusted-p threshold is very conservative at these group
    // sizes, so ranks are the robust comparison).
    let top_planted = |r: &MaxTResult| {
        r.by_significance()
            .take(10)
            .filter(|row| ds.truth[row.index])
            .count()
    };
    let t_hits = top_planted(&t_res);
    let w_hits = top_planted(&w_res);
    assert!(
        w_hits > t_hits,
        "wilcoxon ({w_hits}) should beat t ({t_hits}) under outliers"
    );
    assert!(
        w_hits >= 7,
        "wilcoxon should keep planted genes at the top, found {w_hits}/10"
    );
}

#[test]
fn paired_test_beats_unpaired_under_strong_pairing() {
    use microarray::design::LabelDesign;
    // Strong per-pair effects make the unpaired t noisy while the paired t
    // cancels them.
    let ds = SynthConfig::new(250, LabelDesign::Paired { pairs: 10 })
        .diff_fraction(0.08)
        .effect_size(1.2)
        .seed(15)
        .generate();
    let paired = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default()
            .test(TestMethod::PairT)
            .permutations(1_000),
    )
    .unwrap();
    let unpaired = mt_maxt(
        &ds.matrix,
        &ds.labels,
        &PmaxtOptions::default().permutations(1_000),
    )
    .unwrap();
    // The per-pair random effects (unit_sd) are noise to the unpaired test
    // but cancel exactly in the paired differences, so the paired test must
    // rank the planted genes far better. Use top-20 recovery (20 genes are
    // planted) rather than the very conservative adjusted-p threshold.
    let top_planted = |r: &MaxTResult| {
        r.by_significance()
            .take(20)
            .filter(|row| ds.truth[row.index])
            .count()
    };
    let p_hits = top_planted(&paired);
    let u_hits = top_planted(&unpaired);
    assert!(p_hits >= u_hits, "paired {p_hits} vs unpaired {u_hits}");
    assert!(
        p_hits >= 14,
        "paired should rank most planted genes on top, found {p_hits}/20"
    );
}
