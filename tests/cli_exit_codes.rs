//! Exit-code contract of the `pmaxt` binary.
//!
//! The CLI promises distinct exit codes so batch schedulers and shell
//! scripts can tell misuse from infrastructure failure: `0` success, `1`
//! runtime failure (missing file, dead server), `2` usage error (bad flags
//! or option values), `3` the `ranks > B` resource-allocation rejection
//! from `chunk_for_rank`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn pmaxt(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pmaxt"))
        .args(args)
        .env_remove("SPRINT_KERNEL")
        .env_remove("SPRINT_THREADS")
        .env_remove("SPRINT_BATCH")
        .output()
        .expect("spawn pmaxt")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pmaxt-exit-{}-{name}", std::process::id()))
}

fn generate(path: &std::path::Path, genes: &str) {
    let out = pmaxt(&[
        "generate",
        path.to_str().unwrap(),
        "--genes",
        genes,
        "--n0",
        "4",
        "--n1",
        "4",
        "--seed",
        "11",
    ]);
    assert!(out.status.success(), "generate failed: {out:?}");
}

#[test]
fn no_subcommand_is_usage_error() {
    let out = pmaxt(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn unknown_flag_is_usage_error() {
    let out = pmaxt(&["run", "whatever.tsv", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_option_value_is_usage_error() {
    let out = pmaxt(&["run", "whatever.tsv", "--side", "sideways"]);
    assert_eq!(out.status.code(), Some(2));
    let out = pmaxt(&["run", "whatever.tsv", "--test", "anova9000"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_dataset_is_runtime_error() {
    let out = pmaxt(&["run", "/nonexistent/never/there.tsv", "-B", "10"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
}

#[test]
fn ranks_exceeding_permutations_is_exit_3() {
    let data = tmp("ranks.tsv");
    generate(&data, "10");
    let out = pmaxt(&["run", data.to_str().unwrap(), "-B", "3", "--ranks", "8"]);
    assert_eq!(out.status.code(), Some(3), "out: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("3") && stderr.contains("8"),
        "diagnostic should name both counts: {stderr}"
    );
    std::fs::remove_file(&data).ok();
}

#[test]
fn successful_run_is_exit_0() {
    let data = tmp("ok.tsv");
    generate(&data, "20");
    let out = pmaxt(&["run", data.to_str().unwrap(), "-B", "50", "--ranks", "2"]);
    assert_eq!(out.status.code(), Some(0), "out: {out:?}");
    std::fs::remove_file(&data).ok();
}

#[test]
fn invalid_kernel_env_warns_once_but_still_runs() {
    let data = tmp("env.tsv");
    generate(&data, "15");
    let out = Command::new(env!("CARGO_BIN_EXE_pmaxt"))
        .args(["run", data.to_str().unwrap(), "-B", "40"])
        .env("SPRINT_KERNEL", "warpdrive")
        .env_remove("SPRINT_THREADS")
        .env_remove("SPRINT_BATCH")
        .output()
        .expect("spawn pmaxt");
    assert_eq!(out.status.code(), Some(0), "out: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("SPRINT_KERNEL") && stderr.contains("warpdrive"),
        "expected a warning naming the bad value: {stderr}"
    );
    assert_eq!(
        stderr.matches("warpdrive").count(),
        1,
        "warning should be emitted once: {stderr}"
    );
    std::fs::remove_file(&data).ok();
}

#[test]
fn client_without_server_is_runtime_error() {
    let out = pmaxt(&["status", "unix:/nonexistent/jobd.sock", "1"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn client_missing_job_id_is_usage_error() {
    let out = pmaxt(&["status", "unix:/nonexistent/jobd.sock"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn perm_file_width_mismatch_is_usage_error() {
    let data = tmp("permwidth.tsv");
    generate(&data, "10"); // 4 + 4 samples → 8 columns
    let perms = tmp("permwidth-rows.txt");
    // Second arrangement is one label short: the StoredMatrix width check
    // must refuse it with a typed error → usage exit, naming the row.
    std::fs::write(&perms, "1 1 0 0 1 0 1 0\n0 1 1 0 1 0 1\n").unwrap();
    let out = pmaxt(&[
        "run",
        data.to_str().unwrap(),
        "--perm-file",
        perms.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "out: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("arrangement 1") && stderr.contains("8") && stderr.contains("7"),
        "diagnostic should name the row and both widths: {stderr}"
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&perms).ok();
}

#[test]
fn perm_file_replay_runs_clean() {
    let data = tmp("permreplay.tsv");
    generate(&data, "10");
    let perms = tmp("permreplay-rows.txt");
    std::fs::write(
        &perms,
        "# two rearrangements of the 4 + 4 labelling\n1 1 0 0 1 0 1 0\n0 1 1 0 1 0 1 0\n",
    )
    .unwrap();
    let out = pmaxt(&[
        "run",
        data.to_str().unwrap(),
        "--perm-file",
        perms.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "out: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("replayed 3"),
        "identity + 2 file rows: {stderr}"
    );
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&perms).ok();
}

#[test]
fn perm_file_foreign_labelling_is_usage_error() {
    let data = tmp("permforeign.tsv");
    generate(&data, "10");
    let perms = tmp("permforeign-rows.txt");
    // Right width, wrong multiset (five 1s): not a rearrangement.
    std::fs::write(&perms, "1 1 1 1 1 0 0 0\n").unwrap();
    let out = pmaxt(&[
        "run",
        data.to_str().unwrap(),
        "--perm-file",
        perms.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "out: {out:?}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&perms).ok();
}

#[test]
fn bootstrap_workload_runs_and_minp_combo_is_usage_error() {
    let data = tmp("bootcli.tsv");
    generate(&data, "12");
    let out = pmaxt(&[
        "run",
        data.to_str().unwrap(),
        "--workload",
        "bootstrap",
        "-B",
        "200",
    ]);
    assert_eq!(out.status.code(), Some(0), "out: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("percentile CI") && stdout.contains("BCa CI"),
        "stdout: {stdout}"
    );
    let out = pmaxt(&[
        "run",
        data.to_str().unwrap(),
        "--workload",
        "bootstrap",
        "-B",
        "200",
        "--minp",
    ]);
    assert_eq!(out.status.code(), Some(2), "out: {out:?}");
    let out = pmaxt(&["run", data.to_str().unwrap(), "--workload", "jackknife"]);
    assert_eq!(out.status.code(), Some(2), "out: {out:?}");
    std::fs::remove_file(&data).ok();
}
